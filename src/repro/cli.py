"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``stats``      graph statistics + Table-II-style row
``decompose``  coreness histogram and the HCD forest
``search``     best k-core under a community metric
``bestk``      best k for whole k-core sets (Section VI)
``report``     full analysis report (profile, hierarchy, best cores)
``datasets``   list the built-in dataset stand-ins
``sanitize``   SimTSan races + SimCheck memcheck + SAN lint over kernels
``profile``    SimProf: span-trace a run, flame summary + trace exports
``serve``      HCDServe: replay a query trace against a snapshot catalog
``cluster``    SimCluster: sharded decomposition / fault-tolerant serving

Graphs come either from an edge-list file (``--input``) or a built-in
stand-in (``--dataset AS|LJ|...``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro.analysis.datasets import dataset_names, get_spec, load
from repro.analysis.visualization import ascii_tree, hierarchy_summary
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list
from repro.parallel.scheduler import SimulatedPool
from repro.pipeline import decompose, search_best_core
from repro.search.best_k import find_best_k
from repro.search.metrics import metric_names

__all__ = ["main", "build_parser"]


def _add_graph_source(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--input", help="edge-list file (u v per line)")
    group.add_argument(
        "--dataset", help="built-in stand-in name or abbreviation (e.g. AS)"
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=4,
        help="simulated thread count (default 4)",
    )


def _load_graph(args: argparse.Namespace) -> Graph:
    if args.input:
        return read_edge_list(args.input, relabel=True)
    return load(args.dataset).graph


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="parallel hierarchical core decomposition (ICDE 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="graph statistics")
    _add_graph_source(p_stats)

    p_deco = sub.add_parser("decompose", help="coreness + HCD forest")
    _add_graph_source(p_deco)
    p_deco.add_argument(
        "--tree", action="store_true", help="print the full ASCII forest"
    )

    p_search = sub.add_parser("search", help="best k-core under a metric")
    _add_graph_source(p_search)
    p_search.add_argument(
        "--metric",
        default="average_degree",
        choices=metric_names(),
    )

    p_bestk = sub.add_parser("bestk", help="best k over k-core sets")
    _add_graph_source(p_bestk)
    p_bestk.add_argument(
        "--metric",
        default="average_degree",
        choices=metric_names(),
    )

    p_report = sub.add_parser(
        "report", help="full analysis report for a graph"
    )
    _add_graph_source(p_report)

    sub.add_parser("datasets", help="list built-in dataset stand-ins")

    p_san = sub.add_parser(
        "sanitize",
        help="race detection + memory sanitizer + lint + flow analysis",
        description=(
            "Run the sanitizer families over the substrate: the "
            "SimTSan race detector over the named parallel kernels, "
            "the SimCheck memory & numeric sanitizer (--memcheck), "
            "the static SAN1xx-SAN3xx lint pass over source trees, "
            "the SimFlow SAN4xx CFG/dataflow analysis (--flow), the "
            "SimProve SAN5xx static bounds/determinism certification "
            "(--prove), the SimDist SAN6xx distributed-protocol "
            "certification (--dist), and the seeded-bug selftests.  "
            "With no options: all kernels, lint + flow + prove + dist "
            "over src/ and benchmarks/, and the selftests."
        ),
        epilog=(
            "Exit status: 0 when every family that ran is clean; "
            "1 when ANY family reports (a race, a memcheck finding, "
            "a lint or flow error, a SAN501 provable OOB, a SAN6xx "
            "protocol violation, prove- or dist-manifest drift, a "
            "stale flow-baseline entry or any warning under --strict, "
            "or a failed selftest); 2 on usage errors.  One summary "
            "line is printed per family."
        ),
    )
    p_san.add_argument(
        "--all-kernels",
        action="store_true",
        help="race-check every registered kernel",
    )
    p_san.add_argument(
        "--kernel",
        action="append",
        default=[],
        metavar="NAME",
        help="race-check one kernel (repeatable; see --list)",
    )
    p_san.add_argument(
        "--lint",
        nargs="*",
        metavar="PATH",
        help="lint parallel workers under PATH(s) (default: src/)",
    )
    p_san.add_argument(
        "--selftest",
        action="store_true",
        help=(
            "only verify the seeded-bug kernels are flagged (the racy "
            "kernel; with --memcheck also the uninit/OOB/overflow/NaN "
            "kernel)"
        ),
    )
    p_san.add_argument(
        "--memcheck",
        action="store_true",
        help=(
            "attach the SimCheck memory sanitizer to kernel runs: "
            "poisoned-allocation uninit reads, out-of-bounds indices, "
            "overflowing casts, NaN origins"
        ),
    )
    p_san.add_argument(
        "--flow",
        action="store_true",
        help=(
            "run the SimFlow SAN4xx analysis: divergent-sync taint "
            "over worker CFGs (SAN401/402), disjoint-write interval "
            "proofs (SAN403 + SAN201 downgrades), and kernel effect "
            "signature drift (SAN404/405) for the selected kernels"
        ),
    )
    p_san.add_argument(
        "--flow-baseline",
        metavar="FILE",
        help=(
            "acknowledged-drift baseline for SAN4xx findings "
            "(default: the committed flow_baseline.json)"
        ),
    )
    p_san.add_argument(
        "--prove",
        action="store_true",
        help=(
            "run the SimProve SAN5xx static certification: fixpoint "
            "interval bounds proofs for every recorded access "
            "(SAN501 provable OOB, SAN502 unproven), determinism "
            "classification of combining atomics (SAN503 order-"
            "sensitive float reductions), and drift detection "
            "against the committed prove_manifest.json"
        ),
    )
    p_san.add_argument(
        "--dist",
        action="store_true",
        help=(
            "run the SimDist SAN6xx analysis over the cluster layer: "
            "monotonicity certification of cross-shard estimate "
            "updates (SAN601), BSP phase discipline (SAN602), shard-"
            "ownership disjoint-write proofs (SAN603), declared "
            "MESSAGE_SCHEMAS vs derived wire effects of every "
            "Network.send site (SAN604/605), replay safety of "
            "failover-reachable handlers (SAN606), and drift "
            "detection against the committed dist_manifest.json"
        ),
    )
    p_san.add_argument(
        "--write-manifest",
        action="store_true",
        help=(
            "re-prove every kernel and re-certify every protocol, "
            "refreshing the committed prove_manifest.json and "
            "dist_manifest.json instead of failing on drift"
        ),
    )
    p_san.add_argument(
        "--strict",
        action="store_true",
        help="treat lint/flow warnings as failures (CI gate mode)",
    )
    p_san.add_argument(
        "--report",
        metavar="FILE",
        help="write a JSON report of every family's findings to FILE",
    )
    p_san.add_argument(
        "--list", action="store_true", help="list registered kernels"
    )
    p_san.add_argument(
        "--threads",
        type=int,
        default=4,
        help="virtual threads for kernel runs (default 4)",
    )

    p_prof = sub.add_parser(
        "profile",
        help="SimProf span tracing: flame summary + Chrome trace export",
        description=(
            "Run the end-to-end pipeline under the SimProf span tracer "
            "and print a terminal flame summary with per-phase cost "
            "decomposition.  With --out, also write profile.json and a "
            "Chrome trace_event JSON (chrome://tracing / Perfetto).  "
            "With --selftest, verify instead that attaching the tracer "
            "perturbs the simulated clock of every registered kernel "
            "by exactly zero."
        ),
    )
    source = p_prof.add_mutually_exclusive_group()
    source.add_argument("--input", help="edge-list file (u v per line)")
    source.add_argument(
        "--dataset",
        help="built-in stand-in name or abbreviation (default AS)",
    )
    p_prof.add_argument(
        "--threads",
        type=int,
        default=4,
        help="simulated thread count (default 4)",
    )
    p_prof.add_argument(
        "--metric",
        default="average_degree",
        choices=metric_names(),
        help="community metric for the search stage",
    )
    p_prof.add_argument(
        "--out",
        metavar="DIR",
        help="write profile.json + trace.json under DIR",
    )
    p_prof.add_argument(
        "--top",
        type=int,
        default=8,
        help="hottest contended cache lines to report per phase",
    )
    p_prof.add_argument(
        "--selftest",
        action="store_true",
        help="verify the zero-perturbation guarantee on every kernel",
    )

    p_serve = sub.add_parser(
        "serve",
        help="replay a query trace against a served snapshot (HCDServe)",
        description=(
            "Build-once/query-many serving: open a snapshot from a "
            "versioned catalog (optionally building and publishing it "
            "first from a graph source) and replay a request trace "
            "through admission control, batched planning, the LRU "
            "result cache, and shared-pass execution.  Reports latency "
            "percentiles (in deterministic work units — identical "
            "across thread counts), throughput, and cache statistics."
        ),
    )
    serve_source = p_serve.add_mutually_exclusive_group()
    serve_source.add_argument("--input", help="edge-list file (u v per line)")
    serve_source.add_argument(
        "--dataset", help="built-in stand-in name or abbreviation (e.g. AS)"
    )
    p_serve.add_argument(
        "--catalog",
        default=".hcdserve",
        metavar="DIR",
        help="snapshot catalog directory (default .hcdserve)",
    )
    p_serve.add_argument(
        "--snapshot",
        default="default",
        metavar="NAME",
        help="snapshot name to serve (default 'default')",
    )
    p_serve.add_argument(
        "--build",
        action="store_true",
        help=(
            "build a snapshot from --input/--dataset and publish it to "
            "the catalog before serving"
        ),
    )
    p_serve.add_argument(
        "--trace",
        metavar="FILE",
        help="JSON-lines request trace to replay",
    )
    p_serve.add_argument(
        "--synthetic",
        type=int,
        default=64,
        metavar="N",
        help="without --trace: replay N synthetic requests (default 64)",
    )
    p_serve.add_argument(
        "--seed", type=int, default=0, help="synthetic-trace seed"
    )
    p_serve.add_argument(
        "--threads",
        type=int,
        default=4,
        help="simulated thread count (default 4)",
    )
    p_serve.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="max queries per execution batch (default 16)",
    )
    p_serve.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        help="admission queue bound; overflow is shed (default 64)",
    )
    p_serve.add_argument(
        "--cache-capacity",
        type=int,
        default=256,
        help="LRU result-cache entries, 0 disables (default 256)",
    )
    p_serve.add_argument(
        "--per-query",
        action="store_true",
        help=(
            "baseline mode: batch size 1, no shared-pass memoization, "
            "no result cache (what the serving benchmark compares "
            "batched execution against)"
        ),
    )
    p_serve.add_argument(
        "--profile",
        action="store_true",
        help="trace the replay with SimProf and print the serve.* phases",
    )
    p_serve.add_argument(
        "--json",
        metavar="FILE",
        help="write the full report as JSON to FILE",
    )

    p_cluster = sub.add_parser(
        "cluster",
        help="sharded multi-node decomposition / serving (SimCluster)",
        description=(
            "Run on the deterministic simulated cluster: shard a graph "
            "across nodes (contiguous ranges or label propagation), run "
            "the distributed shard-grained MPM decomposition — bit-"
            "identical to single-node decomposition at every shard "
            "count — and report the compute/comms clock split.  With "
            "--serve N, instead route a synthetic query trace through "
            "the sharded ClusterService (per-shard replicas, hedging, "
            "deterministic crash/slow fault injection, catalog "
            "recovery).  With --mpm, also run the single-node MPM "
            "baseline and report its rounds next to the cluster's "
            "supersteps."
        ),
    )
    cluster_source = p_cluster.add_mutually_exclusive_group(required=True)
    cluster_source.add_argument(
        "--input", help="edge-list file (u v per line)"
    )
    cluster_source.add_argument(
        "--dataset", help="built-in stand-in name or abbreviation (e.g. AS)"
    )
    p_cluster.add_argument(
        "--shards",
        type=int,
        default=2,
        help="number of shards / nodes (default 2)",
    )
    p_cluster.add_argument(
        "--threads",
        type=int,
        default=4,
        help="simulated threads per node (default 4)",
    )
    p_cluster.add_argument(
        "--partition",
        choices=("range", "lp"),
        default="range",
        help="sharding strategy: contiguous ranges or label propagation",
    )
    p_cluster.add_argument(
        "--mpm",
        action="store_true",
        help="also run the single-node MPM baseline (rounds vs supersteps)",
    )
    p_cluster.add_argument(
        "--serve",
        type=int,
        default=0,
        metavar="N",
        help="route N synthetic requests through the sharded service",
    )
    p_cluster.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="replicas per shard for --serve (default 2)",
    )
    p_cluster.add_argument(
        "--catalog",
        default=".hcdserve",
        metavar="DIR",
        help="snapshot catalog directory for --serve (default .hcdserve)",
    )
    p_cluster.add_argument(
        "--snapshot",
        default="default",
        metavar="NAME",
        help="snapshot name for --serve (default 'default')",
    )
    p_cluster.add_argument(
        "--build",
        action="store_true",
        help="build + publish the snapshot from the graph source first",
    )
    p_cluster.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="NODE:T[:RECOVER]",
        help=(
            "crash NODE at work-unit time T (repeatable); with "
            ":RECOVER it re-registers from the catalog at that time"
        ),
    )
    p_cluster.add_argument(
        "--slow",
        action="append",
        default=[],
        metavar="NODE:FACTOR",
        help="slow NODE down by FACTOR >= 1 (repeatable)",
    )
    p_cluster.add_argument(
        "--hedge-timeout",
        type=float,
        default=0.0,
        metavar="T",
        help="hedge requests slower than T work units (0 disables)",
    )
    p_cluster.add_argument(
        "--seed", type=int, default=0, help="synthetic-trace seed"
    )
    p_cluster.add_argument(
        "--profile-out",
        metavar="DIR",
        help="write cluster_profile.json + cluster_trace.json under DIR",
    )
    p_cluster.add_argument(
        "--json",
        metavar="FILE",
        help="write the full report as JSON to FILE",
    )
    return parser


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    deco = decompose(graph, threads=args.threads)
    stats = deco.hcd.stats()
    print(f"vertices : {graph.num_vertices}")
    print(f"edges    : {graph.num_edges}")
    print(f"avg deg  : {graph.average_degree():.2f}")
    print(f"kmax     : {stats.kmax}")
    print(f"|T|      : {stats.num_nodes}")
    print(f"forest depth: {stats.max_depth}")
    return 0


def _cmd_decompose(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    deco = decompose(graph, threads=args.threads)
    hist = np.bincount(deco.coreness)
    print("coreness histogram (k: count):")
    for k, count in enumerate(hist):
        if count:
            print(f"  {k:4d}: {count}")
    print()
    if args.tree:
        print(ascii_tree(deco.hcd))
    else:
        print(hierarchy_summary(deco.hcd))
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    result, deco = search_best_core(
        graph, args.metric, threads=args.threads
    )
    members = result.best_members()
    print(f"metric     : {args.metric}")
    print(f"best k     : {result.best_k}")
    print(f"score      : {result.best_score:.6f}")
    print(f"|S|        : {members.size}")
    shown = ", ".join(str(int(v)) for v in members[:20])
    suffix = ", ..." if members.size > 20 else ""
    print(f"members    : [{shown}{suffix}]")
    print("phase times (simulated):")
    for phase, elapsed in deco.phase_times.items():
        print(f"  {phase:20} {elapsed:12.0f}")
    return 0


def _cmd_bestk(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    deco = decompose(graph, threads=args.threads)
    pool = SimulatedPool(threads=args.threads)
    result = find_best_k(graph, deco.coreness, args.metric, pool)
    print(f"metric : {args.metric}")
    print(f"best k : {result.best_k} (score {result.best_score:.6f})")
    print("score per k:")
    for k, score in enumerate(result.scores):
        marker = "  <== best" if k == result.best_k else ""
        print(f"  k={k:4d}: {score:12.6f}{marker}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import analysis_report

    graph = _load_graph(args)
    print(analysis_report(graph, threads=args.threads))
    return 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.sanitizer import (
        KERNELS,
        lint_paths,
        memcheck_selftest,
        run_kernel,
        selftest,
    )

    if args.list:
        for name in KERNELS:
            print(name)
        return 0

    from pathlib import Path

    # default mode: everything
    explicit = bool(
        args.all_kernels
        or args.kernel
        or args.lint is not None
        or args.selftest
        or args.flow
        or args.prove
        or args.dist
        or args.write_manifest
    )
    default_scope = [p for p in ("src", "benchmarks") if Path(p).exists()]
    do_kernels = list(args.kernel)
    if args.all_kernels or not explicit:
        do_kernels = list(KERNELS)
    do_lint = args.lint if args.lint is not None else (
        None
        if args.selftest
        or args.kernel
        or args.all_kernels
        or args.flow
        or args.prove
        or args.dist
        or args.write_manifest
        else list(default_scope)
    )
    if args.lint is not None and not args.lint:
        do_lint = list(default_scope)
    do_selftest = args.selftest or not explicit
    do_flow = args.flow or not explicit
    do_prove = args.prove or args.write_manifest or not explicit
    do_dist = args.dist or args.write_manifest or not explicit
    # SimFlow analyzes the lint scope (or the default scope when only
    # --flow was given); effect signatures cover the selected kernels
    flow_paths = do_lint if do_lint else list(default_scope)

    if args.threads < 1:
        print(
            f"--threads must be >= 1, got {args.threads}", file=sys.stderr
        )
        return 2

    unknown = [name for name in do_kernels if name not in KERNELS]
    if unknown:
        names = ", ".join(sorted(unknown))
        print(f"unknown kernel(s): {names}", file=sys.stderr)
        print(f"available: {', '.join(KERNELS)}", file=sys.stderr)
        return 2

    # per-family results: family -> (failure_count, summary_suffix)
    families: dict[str, tuple[int, str]] = {}
    report_json: dict[str, object] = {
        "schema": "sanitize-report/v1",
        "threads": args.threads,
    }

    if do_kernels:
        mode = "races + memcheck" if args.memcheck else "race detection"
        print(f"== {mode} ({args.threads} virtual threads) ==")
        race_count = 0
        mem_count = 0
        nan_count = 0
        kernel_rows = []
        for name in do_kernels:
            report = run_kernel(
                name, threads=args.threads, memcheck=args.memcheck
            )
            problems = len(report.races) + len(report.memcheck_findings)
            status = "ok" if problems == 0 else f"{problems} FINDING(S)"
            print(
                f"  {name:22s} {report.regions:5d} regions "
                f"{report.events:8d} events  {status}"
            )
            for race in report.races:
                print(f"    {race}")
            for finding in report.memcheck_findings:
                print(f"    {finding}")
            race_count += len(report.races)
            mem_count += len(report.memcheck_findings)
            nan_count += len(report.nan_origins)
            kernel_rows.append(
                {
                    "name": name,
                    "regions": report.regions,
                    "events": report.events,
                    "races": [str(r) for r in report.races],
                    "memcheck": [str(f) for f in report.memcheck_findings],
                    "nan_origins": [str(o) for o in report.nan_origins],
                }
            )
        families["races"] = (
            race_count,
            f"{race_count} finding(s) over {len(do_kernels)} kernel(s)",
        )
        if args.memcheck:
            families["memcheck"] = (
                mem_count,
                f"{mem_count} finding(s), {nan_count} NaN origin(s)",
            )
        report_json["kernels"] = kernel_rows

    # SimFlow runs before the lint report so its disjoint-write proofs
    # can downgrade SAN201 warnings at verified sites
    flow_report = None
    flow_active: list = []
    flow_baselined: list = []
    flow_stale: list[str] = []
    downgrade_lines: set[tuple[str, int]] = set()
    if do_flow:
        from repro.sanitizer.flow import (
            analyze_paths as flow_analyze_paths,
            apply_baseline,
            check_kernel_effects,
            load_baseline,
            stale_baseline_entries,
        )

        missing = [p for p in flow_paths if not Path(p).exists()]
        if missing:
            for p in missing:
                print(f"no such lint path: {p}", file=sys.stderr)
            return 2
        try:
            baseline = load_baseline(args.flow_baseline)
        except (OSError, ValueError) as exc:
            print(
                f"cannot read flow baseline "
                f"{args.flow_baseline}: {exc}",
                file=sys.stderr,
            )
            return 2
        flow_report = flow_analyze_paths(flow_paths)
        effect_findings, inferred = check_kernel_effects(
            names=do_kernels or None
        )
        flow_report.findings.extend(effect_findings)
        flow_report.effects = inferred
        flow_active, flow_baselined = apply_baseline(
            flow_report.findings, baseline
        )
        flow_stale = stale_baseline_entries(flow_report.findings, baseline)
        downgrade_lines = {
            (str(Path(p).resolve()), line)
            for p, line in flow_report.verified_lines()
        }

    if do_lint:
        missing = [p for p in do_lint if not Path(p).exists()]
        if missing:
            for p in missing:
                print(f"no such lint path: {p}", file=sys.stderr)
            return 2
        print(f"== lint ({', '.join(str(p) for p in do_lint)}) ==")
        findings = lint_paths(do_lint)
        # a disjointness *proof* trumps the pattern checks: SAN201
        # (bare item-derived store) and SAN101 (index the lint cannot
        # relate to the item, e.g. the chunk-loop idiom) both downgrade
        downgraded = [
            f
            for f in findings
            if f.code in ("SAN101", "SAN201")
            and (str(Path(f.path).resolve()), f.line) in downgrade_lines
        ]
        findings = [f for f in findings if f not in downgraded]
        errors = sum(1 for f in findings if f.severity == "error")
        warnings = len(findings) - errors
        for finding in findings:
            print(f"  {finding}")
        for finding in downgraded:
            print(f"  {finding} [downgraded: verified-disjoint]")
        if not findings and not downgraded:
            print("  clean")
        lint_failures = errors + (warnings if args.strict else 0)
        suffix = f"{errors} error(s), {warnings} warning(s)"
        if downgraded:
            suffix += f", {len(downgraded)} downgraded"
        families["lint"] = (
            lint_failures,
            suffix + (" [strict]" if args.strict else ""),
        )
        report_json["lint"] = [str(f) for f in findings]
        report_json["lint_downgraded"] = [str(f) for f in downgraded]

    if do_flow and flow_report is not None:
        print(f"== flow ({', '.join(str(p) for p in flow_paths)}) ==")
        cwd = Path.cwd()

        def _rel(path: str) -> str:
            try:
                return str(Path(path).resolve().relative_to(cwd))
            except ValueError:
                return path

        for finding in flow_active:
            print(f"  {_rel(finding.path)}:{finding.line}:{finding.col} "
                  f"{finding.code} [{finding.severity}] {finding.message}")
        for finding, reason in flow_baselined:
            print(f"  {finding.code} baselined ({finding.key}): {reason}")
        for key in flow_stale:
            print(
                f"  stale baseline entry (matches no current finding):"
                f" {key}"
            )
        if not flow_active and not flow_baselined and not flow_stale:
            print("  clean")
        flow_errors = sum(
            1 for f in flow_active if f.severity == "error"
        )
        flow_warnings = len(flow_active) - flow_errors
        flow_failures = flow_errors + (
            flow_warnings + len(flow_stale) if args.strict else 0
        )
        families["flow"] = (
            flow_failures,
            f"{flow_errors} error(s), {flow_warnings} warning(s), "
            f"{len(flow_report.verified)} verified-disjoint, "
            f"{len(flow_baselined)} baselined, "
            f"{len(flow_stale)} stale baseline entr(ies), "
            f"effects over {len(flow_report.effects)} kernel(s)"
            + (" [strict]" if args.strict else ""),
        )
        report_json["flow"] = {
            "findings": [str(f) for f in flow_active],
            "baselined": [
                {"key": f.key, "reason": reason}
                for f, reason in flow_baselined
            ],
            "stale_baseline": list(flow_stale),
            "verified_disjoint": [str(v) for v in flow_report.verified],
            "effects": {
                name: sig.as_dict()
                for name, sig in flow_report.effects.items()
            },
            "workers": flow_report.workers,
            "files": flow_report.files,
        }

    prove_report = None
    prove_full = False
    if do_prove:
        from repro.sanitizer.prove import (
            DEFAULT_MANIFEST_PATH,
            diff_manifest,
            load_manifest,
            manifest_payload,
            prove_kernels as run_prove,
            write_manifest,
        )

        print("== prove (SimProve SAN5xx static certification) ==")
        # --write-manifest always re-proves the full registry so the
        # committed manifest never shrinks to a subset
        full_set = (
            args.write_manifest
            or not do_kernels
            or set(do_kernels) == set(KERNELS)
        )
        prove_report = run_prove(None if full_set else do_kernels)
        prove_full = full_set
        for name, cert in sorted(prove_report.certificates.items()):
            bounds = cert.bounds
            tag = "fully-proven" if cert.fully_proven else cert.status
            print(
                f"  {name:22s} {tag:15s} {cert.determinism:15s} "
                f"{bounds['proven']:3d} proven "
                f"{bounds['unproven']:3d} unproven "
                f"{bounds['violations']} violation(s)"
            )
        prove_errors = [
            f for f in prove_report.findings if f.severity == "error"
        ]
        for finding in prove_errors:
            print(f"  {finding}")
        n_503 = sum(
            1 for f in prove_report.findings if f.code == "SAN503"
        )
        n_502 = sum(
            1 for f in prove_report.findings if f.code == "SAN502"
        )
        drift: list[str] = []
        if args.write_manifest:
            write_manifest(prove_report)
            print(f"  manifest refreshed: {DEFAULT_MANIFEST_PATH}")
        elif full_set:
            drift = diff_manifest(
                manifest_payload(prove_report), load_manifest()
            )
            for line in drift:
                print(f"  manifest drift: {line}")
        else:
            print(
                "  (subset proven — manifest drift check skipped; "
                "run without --kernel to check drift)"
            )
        # SAN502/SAN503 are acknowledged by the committed manifest —
        # the manifest IS the prove baseline — so --strict does not
        # promote them; only provable OOB and unacknowledged drift gate
        prove_failures = len(prove_errors) + len(drift)
        families["prove"] = (
            prove_failures,
            f"{len(prove_report.certified)} certified / "
            f"{len(prove_report.certificates)} kernel(s), "
            f"{len(prove_errors)} SAN501, {n_502} SAN502, "
            f"{n_503} SAN503, {len(drift)} drift line(s)",
        )
        report_json["prove"] = {
            "certificates": {
                name: cert.as_dict()
                for name, cert in sorted(prove_report.certificates.items())
            },
            "findings": [str(f) for f in prove_report.findings],
            "drift": list(drift),
        }

    if do_dist:
        from repro.sanitizer.dist import (
            DEFAULT_DIST_MANIFEST_PATH,
            analyze_dist,
            diff_dist_manifest,
            dist_manifest_payload,
            load_dist_manifest,
            write_dist_manifest,
        )

        print("== dist (SimDist SAN6xx protocol certification) ==")
        dist_report = analyze_dist()
        for name, cert in sorted(dist_report.certificates.items()):
            print(
                f"  {name:22s} {cert.status:12s} "
                f"{len(cert.obligations):2d} obligation(s) "
                f"{len(cert.sends)} send site(s) "
                f"{len(cert.handlers)} handler(s)"
            )
        for finding in dist_report.findings:
            print(f"  {finding}")
        dist_errors = dist_report.errors
        dist_warnings = dist_report.warnings
        dist_drift: list[str] = []
        if args.write_manifest:
            write_dist_manifest(dist_report)
            print(f"  manifest refreshed: {DEFAULT_DIST_MANIFEST_PATH}")
        else:
            dist_drift = diff_dist_manifest(
                dist_manifest_payload(dist_report), load_dist_manifest()
            )
            for line in dist_drift:
                print(f"  manifest drift: {line}")
        unclassified = sorted(
            k for k, v in dist_report.kernels.items() if v == "unclassified"
        )
        dist_failures = (
            len(dist_errors)
            + len(dist_drift)
            + (len(dist_warnings) if args.strict else 0)
        )
        families["dist"] = (
            dist_failures,
            f"{len(dist_report.certified)} certified / "
            f"{len(dist_report.certificates)} protocol(s), "
            f"{len(dist_report.kernels) - len(unclassified)}/"
            f"{len(dist_report.kernels)} kernel(s) classified, "
            f"{len(dist_errors)} error(s), "
            f"{len(dist_warnings)} warning(s), "
            f"{len(dist_drift)} drift line(s)"
            + (" [strict]" if args.strict else ""),
        )
        report_json["dist"] = {
            "certificates": {
                name: cert.as_dict()
                for name, cert in sorted(dist_report.certificates.items())
            },
            "findings": [str(f) for f in dist_report.findings],
            "kernels": dict(sorted(dist_report.kernels.items())),
            "drift": list(dist_drift),
        }

    # SAN002 dead-suppression audit: a sani-ok / prove-assume marker
    # is only provably dead when every family that might consume it has
    # run — lint (unsuppressed pass), flow (suppressed_hits), and a
    # full prove (used_marker_lines) — so the audit only fires in
    # default/full mode, never on a single-family invocation
    if (
        do_lint
        and do_flow
        and flow_report is not None
        and prove_report is not None
        and prove_full
    ):
        from repro.sanitizer.lint import (
            ASSUME_MARKER,
            SUPPRESS_MARKER,
            dead_suppressions,
        )

        used_by_file: dict[str, set[int]] = {}
        for p, ln in getattr(flow_report, "suppressed_hits", set()):
            used_by_file.setdefault(str(Path(p).resolve()), set()).add(ln)
        for p, ln in getattr(prove_report, "used_marker_lines", set()):
            used_by_file.setdefault(str(Path(p).resolve()), set()).add(ln)
        dead: list = []
        for root in do_lint:
            rp = Path(root)
            files = [rp] if rp.is_file() else sorted(rp.rglob("*.py"))
            for fp in files:
                try:
                    source = fp.read_text(encoding="utf-8")
                except (OSError, UnicodeDecodeError):
                    continue
                if (
                    SUPPRESS_MARKER not in source
                    and ASSUME_MARKER not in source
                ):
                    continue
                used = used_by_file.get(str(fp.resolve()), set())
                dead.extend(
                    dead_suppressions(
                        source, path=str(fp), used_lines=frozenset(used)
                    )
                )
        print("== suppressions (SAN002 dead-marker audit) ==")
        for finding in dead:
            print(f"  {finding}")
        if not dead:
            print("  clean")
        suppress_failures = len(dead) if args.strict else 0
        families["suppress"] = (
            suppress_failures,
            f"{len(dead)} dead suppression(s)"
            + (" [strict]" if args.strict else ""),
        )
        report_json["suppressions"] = [str(f) for f in dead]

    if do_selftest:
        print("== selftest (seeded-bug kernels) ==")
        ok, message = selftest(threads=max(args.threads, 2))
        print(f"  {message}")
        selftest_failures = 0 if ok else 1
        if args.memcheck:
            mok, mmessage = memcheck_selftest(threads=max(args.threads, 4))
            print(f"  {mmessage}")
            if not mok:
                selftest_failures += 1
        if do_flow:
            from repro.sanitizer.flow import flow_selftest

            fok, fmessage = flow_selftest()
            print(f"  [flow] {fmessage}")
            if not fok:
                selftest_failures += 1
        if do_prove:
            from repro.sanitizer.prove import prove_selftest

            pok, pmessage = prove_selftest()
            print(f"  [prove] {pmessage}")
            if not pok:
                selftest_failures += 1
        if do_dist:
            from repro.sanitizer.dist import dist_selftest

            dok, dmessage = dist_selftest()
            print(f"  [dist] {dmessage}")
            if not dok:
                selftest_failures += 1
        families["selftest"] = (
            selftest_failures,
            "ok" if selftest_failures == 0 else f"{selftest_failures} FAILED",
        )
        report_json["selftest"] = selftest_failures == 0

    failed = any(count for count, _ in families.values())

    print("-- family summary --")
    for family, (count, suffix) in families.items():
        verdict = "ok    " if count == 0 else "FAILED"
        print(f"  {family:9s} {verdict} {suffix}")

    if args.report:
        import json

        report_json["families"] = {
            family: {"failures": count, "summary": suffix}
            for family, (count, suffix) in families.items()
        }
        report_json["ok"] = not failed
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report_json, handle, indent=2, sort_keys=True)
        print(f"report written to {args.report}")

    print("== FAILED ==" if failed else "== OK ==")
    return 1 if failed else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.profiler import (
        SpanTracer,
        flame_summary,
        profile_report,
        selftest,
        write_artifacts,
    )

    if args.threads < 1:
        print(
            f"--threads must be >= 1, got {args.threads}", file=sys.stderr
        )
        return 2

    if args.selftest:
        print("== SimProf selftest (zero-perturbation guarantee) ==")
        ok, message = selftest(threads=max(args.threads, 2))
        print(f"  {message}")
        print("== OK ==" if ok else "== FAILED ==")
        return 0 if ok else 1

    if args.input:
        graph = read_edge_list(args.input, relabel=True)
        source = args.input
    else:
        name = args.dataset or "AS"
        graph = load(name).graph
        source = name

    pool = SimulatedPool(threads=args.threads)
    tracer = SpanTracer()
    tracer.attach(pool)
    result, deco = search_best_core(
        graph, args.metric, pool=pool, parallel=True
    )
    tracer.detach()

    # the invariant the exports rely on: span coverage is exact
    if tracer.total_elapsed() != pool.clock:
        print(
            "profile does not cover the clock: "
            f"{tracer.total_elapsed()!r} != {pool.clock!r}",
            file=sys.stderr,
        )
        return 1

    report = profile_report(tracer, pool, top=args.top)
    print(f"graph      : {source} (n={graph.num_vertices}, m={graph.num_edges})")
    print(f"metric     : {args.metric}  best k={result.best_k}")
    print()
    print(flame_summary(report))
    if args.out:
        paths = write_artifacts(tracer, pool, args.out)
        for kind, path in paths.items():
            print(f"wrote {kind:8s} {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ServeError, WorkloadError
    from repro.serve import (
        HCDService,
        ServiceConfig,
        SnapshotCatalog,
        build_snapshot,
        load_trace,
        synthetic_trace,
    )

    if args.threads < 1:
        print(f"--threads must be >= 1, got {args.threads}", file=sys.stderr)
        return 2

    catalog = SnapshotCatalog(args.catalog)

    if args.build:
        if not (args.input or args.dataset):
            print(
                "--build needs a graph source (--input or --dataset)",
                file=sys.stderr,
            )
            return 2
        graph = _load_graph(args)
        snapshot = build_snapshot(
            graph,
            threads=args.threads,
            name=args.snapshot,
            source=args.input or args.dataset,
        )
        version = catalog.publish(snapshot)
        print(
            f"published {args.snapshot!r} v{version} "
            f"(n={graph.num_vertices}, m={graph.num_edges})"
        )
    elif args.input or args.dataset:
        print(
            "--input/--dataset only apply with --build; the serve path "
            "reads the snapshot from the catalog",
            file=sys.stderr,
        )
        return 2

    try:
        trace = (
            load_trace(args.trace)
            if args.trace
            else synthetic_trace(args.synthetic, seed=args.seed)
        )
    except WorkloadError as exc:
        print(f"bad trace: {exc}", file=sys.stderr)
        return 2

    if args.per_query:
        config = ServiceConfig(
            queue_capacity=args.queue_capacity,
            max_batch=1,
            cache_capacity=0,
            share_passes=False,
        )
    else:
        config = ServiceConfig(
            queue_capacity=args.queue_capacity,
            max_batch=args.max_batch,
            cache_capacity=args.cache_capacity,
        )

    pool = SimulatedPool(threads=args.threads)
    tracer = None
    if args.profile:
        from repro.profiler import SpanTracer

        tracer = SpanTracer()
        tracer.attach(pool)

    try:
        service = HCDService(
            catalog, args.snapshot, config=config, pool=pool
        )
        report = service.serve(trace)
    except (ServeError, WorkloadError) as exc:
        print(f"serve failed: {exc}", file=sys.stderr)
        return 1

    name, version = report.snapshot
    print(f"snapshot   : {name} v{version}")
    print(f"requests   : {len(report.records)} "
          f"(admitted {report.admitted}, shed {report.shed}, "
          f"invalid {report.invalid})")
    print(f"answers    : {report.computed} computed, {report.hits} cached, "
          f"{report.shared} shared, {report.coalesced} coalesced, "
          f"{report.batches} batch(es)")
    print(f"latency    : p50={report.p50:.0f} p95={report.p95:.0f} "
          f"p99={report.p99:.0f} work units")
    print(f"throughput : {report.throughput:.3f} answers / 1k work units")
    print(f"clocks     : work_units={report.work_units:.0f} "
          f"sim_clock={report.sim_clock:.0f} ({args.threads} threads)")
    cache = report.cache
    print(f"cache      : {cache['hits']} hit / {cache['misses']} miss "
          f"(rate {cache['hit_rate']:.2f}), {cache['evictions']} evicted, "
          f"{cache['size']}/{cache['capacity']} used")
    histogram = report.histogram()
    if histogram:
        print("latency histogram (work units):")
        for label, count in histogram.items():
            print(f"  {label:8s} {count}")

    if tracer is not None:
        from repro.profiler import phase_totals, profile_report

        tracer.detach()
        totals = phase_totals(
            profile_report(tracer, pool), prefix="serve."
        )
        print("serve phases (simulated elapsed):")
        for path, elapsed in totals.items():
            print(f"  {path:24s} {elapsed:12.0f}")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")
    return 0


def _parse_fault(spec: str, what: str, parts: int) -> list[float]:
    fields = spec.split(":")
    if not 2 <= len(fields) <= parts:
        raise ValueError(f"bad --{what} spec {spec!r}")
    try:
        return [float(f) for f in fields]
    except ValueError:
        raise ValueError(f"bad --{what} spec {spec!r}") from None


def _cmd_cluster(args: argparse.Namespace) -> int:
    import json

    from repro.cluster import (
        ClusterProfiler,
        SimCluster,
        distributed_core_decomposition,
        shard_graph,
    )
    from repro.errors import ServeError, WorkloadError

    if args.shards < 1 or args.threads < 1 or args.replicas < 1:
        print(
            "--shards, --threads and --replicas must be >= 1",
            file=sys.stderr,
        )
        return 2
    try:
        crashes = [_parse_fault(s, "crash", 3) for s in args.crash]
        slows = [_parse_fault(s, "slow", 2) for s in args.slow]
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    graph = _load_graph(args)
    source = args.input or args.dataset
    payload: dict = {
        "source": source,
        "shards": args.shards,
        "threads": args.threads,
        "partition": args.partition,
    }

    if args.serve:
        from repro.cluster import ClusterService, ClusterServiceConfig
        from repro.serve import (
            SnapshotCatalog,
            build_snapshot,
            synthetic_trace,
        )

        catalog = SnapshotCatalog(args.catalog)
        if args.build:
            snapshot = build_snapshot(
                graph,
                threads=args.threads,
                name=args.snapshot,
                source=source,
            )
            version = catalog.publish(snapshot)
            print(f"published {args.snapshot!r} v{version}")
        config = ClusterServiceConfig(
            num_shards=args.shards,
            replicas=args.replicas,
            hedge_timeout=(
                args.hedge_timeout if args.hedge_timeout > 0 else float("inf")
            ),
        )
        try:
            service = ClusterService(
                catalog, args.snapshot, config=config, threads=args.threads
            )
        except (ServeError, WorkloadError) as exc:
            print(f"cluster serve failed: {exc}", file=sys.stderr)
            return 1
        for fields in crashes:
            service.crash(
                int(fields[0]),
                fields[1],
                fields[2] if len(fields) > 2 else None,
            )
        for node_id, factor in slows:
            service.slow(int(node_id), factor)
        trace = synthetic_trace(args.serve, seed=args.seed)
        profiler = ClusterProfiler(service.cluster)
        try:
            with profiler:
                report = service.serve(trace)
        except (ServeError, WorkloadError) as exc:
            print(f"cluster serve failed: {exc}", file=sys.stderr)
            return 1
        name, version = report.snapshot
        print(f"snapshot   : {name} v{version}")
        print(
            f"topology   : {args.shards} shard(s) x "
            f"{args.replicas} replica(s), {args.threads} threads/node"
        )
        print(
            f"requests   : {len(report.records)} "
            f"(admitted {report.admitted}, shed {report.shed}, "
            f"failed {report.failed})"
        )
        print(
            f"answers    : {report.computed} computed, {report.hits} cached, "
            f"{report.shared} shared, {report.batches} batch(es)"
        )
        print(
            f"faults     : {report.failovers} failover(s), "
            f"{report.hedges} hedge(s), {report.recoveries} recover(ies)"
        )
        print(
            f"latency    : p50={report.p50:.0f} p95={report.p95:.0f} "
            f"p99={report.p99:.0f} work units"
        )
        network = report.network
        print(
            f"network    : {network['messages']} message(s), "
            f"{network['bytes']} byte(s), cost {network['cost']:.0f}"
        )
        print(f"digest     : {report.answers_digest()[:16]}...")
        payload["serve"] = report.as_dict()
    else:
        cluster = SimCluster(args.shards, threads=args.threads)
        for node_id, factor in slows:
            cluster.slow(int(node_id), factor)
        sharded = shard_graph(graph, args.shards, strategy=args.partition)
        profiler = ClusterProfiler(cluster)
        with profiler:
            report = distributed_core_decomposition(graph, cluster, sharded)
        from repro.core.decomposition import core_decomposition

        reference = core_decomposition(graph)
        identical = bool((report.coreness == reference).all())
        print(
            f"graph      : {source} (n={graph.num_vertices}, "
            f"m={graph.num_edges})"
        )
        print(
            f"sharding   : {args.shards} x {args.partition}, "
            f"edge cut {sharded.edge_cut} "
            f"({100 * sharded.cut_fraction:.1f}%)"
        )
        print(
            f"supersteps : {report.supersteps} "
            f"({report.local_rounds} local rounds)"
        )
        print(
            f"clock      : compute={report.compute_clock:.0f} "
            f"comms={report.comms_clock:.0f} "
            f"(ratio {report.as_dict()['comms_compute_ratio']:.3f})"
        )
        print(
            f"network    : {report.messages} message(s), "
            f"{report.bytes_sent} byte(s)"
        )
        print(f"bit-identical to single-node decomposition: {identical}")
        payload["decompose"] = report.as_dict()
        payload["bit_identical"] = identical
        if args.mpm:
            mpm_pool = SimulatedPool(threads=args.threads)
            from repro.core.distributed import mpm_core_decomposition

            mpm_coreness, mpm_rounds = mpm_core_decomposition(
                graph, mpm_pool
            )
            mpm_identical = bool((mpm_coreness == reference).all())
            print(
                f"mpm        : {mpm_rounds} rounds single-node "
                f"(vs {report.supersteps} cluster supersteps), "
                f"identical={mpm_identical}"
            )
            payload["mpm"] = {
                "rounds": mpm_rounds,
                "bit_identical": mpm_identical,
                "sim_clock": mpm_pool.clock,
            }
        if not identical:
            return 1

    if args.profile_out:
        paths = profiler.write_artifacts(args.profile_out)
        for kind, path in paths.items():
            print(f"wrote {kind:8s} {path}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    print(f"{'name':16}{'abbrev':8}description")
    for name in dataset_names():
        spec = get_spec(name)
        print(f"{spec.name:16}{spec.abbrev:8}{spec.description}")
    return 0


_COMMANDS = {
    "stats": _cmd_stats,
    "report": _cmd_report,
    "decompose": _cmd_decompose,
    "search": _cmd_search,
    "bestk": _cmd_bestk,
    "datasets": _cmd_datasets,
    "sanitize": _cmd_sanitize,
    "profile": _cmd_profile,
    "serve": _cmd_serve,
    "cluster": _cmd_cluster,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
