"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``stats``      graph statistics + Table-II-style row
``decompose``  coreness histogram and the HCD forest
``search``     best k-core under a community metric
``bestk``      best k for whole k-core sets (Section VI)
``report``     full analysis report (profile, hierarchy, best cores)
``datasets``   list the built-in dataset stand-ins

Graphs come either from an edge-list file (``--input``) or a built-in
stand-in (``--dataset AS|LJ|...``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro.analysis.datasets import dataset_names, get_spec, load
from repro.analysis.visualization import ascii_tree, hierarchy_summary
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list
from repro.parallel.scheduler import SimulatedPool
from repro.pipeline import decompose, search_best_core
from repro.search.best_k import find_best_k
from repro.search.metrics import metric_names

__all__ = ["main", "build_parser"]


def _add_graph_source(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--input", help="edge-list file (u v per line)")
    group.add_argument(
        "--dataset", help="built-in stand-in name or abbreviation (e.g. AS)"
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=4,
        help="simulated thread count (default 4)",
    )


def _load_graph(args: argparse.Namespace) -> Graph:
    if args.input:
        return read_edge_list(args.input, relabel=True)
    return load(args.dataset).graph


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="parallel hierarchical core decomposition (ICDE 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="graph statistics")
    _add_graph_source(p_stats)

    p_deco = sub.add_parser("decompose", help="coreness + HCD forest")
    _add_graph_source(p_deco)
    p_deco.add_argument(
        "--tree", action="store_true", help="print the full ASCII forest"
    )

    p_search = sub.add_parser("search", help="best k-core under a metric")
    _add_graph_source(p_search)
    p_search.add_argument(
        "--metric",
        default="average_degree",
        choices=metric_names(),
    )

    p_bestk = sub.add_parser("bestk", help="best k over k-core sets")
    _add_graph_source(p_bestk)
    p_bestk.add_argument(
        "--metric",
        default="average_degree",
        choices=metric_names(),
    )

    p_report = sub.add_parser(
        "report", help="full analysis report for a graph"
    )
    _add_graph_source(p_report)

    sub.add_parser("datasets", help="list built-in dataset stand-ins")
    return parser


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    deco = decompose(graph, threads=args.threads)
    stats = deco.hcd.stats()
    print(f"vertices : {graph.num_vertices}")
    print(f"edges    : {graph.num_edges}")
    print(f"avg deg  : {graph.average_degree():.2f}")
    print(f"kmax     : {stats.kmax}")
    print(f"|T|      : {stats.num_nodes}")
    print(f"forest depth: {stats.max_depth}")
    return 0


def _cmd_decompose(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    deco = decompose(graph, threads=args.threads)
    hist = np.bincount(deco.coreness)
    print("coreness histogram (k: count):")
    for k, count in enumerate(hist):
        if count:
            print(f"  {k:4d}: {count}")
    print()
    if args.tree:
        print(ascii_tree(deco.hcd))
    else:
        print(hierarchy_summary(deco.hcd))
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    result, deco = search_best_core(
        graph, args.metric, threads=args.threads
    )
    members = result.best_members()
    print(f"metric     : {args.metric}")
    print(f"best k     : {result.best_k}")
    print(f"score      : {result.best_score:.6f}")
    print(f"|S|        : {members.size}")
    shown = ", ".join(str(int(v)) for v in members[:20])
    suffix = ", ..." if members.size > 20 else ""
    print(f"members    : [{shown}{suffix}]")
    print("phase times (simulated):")
    for phase, elapsed in deco.phase_times.items():
        print(f"  {phase:20} {elapsed:12.0f}")
    return 0


def _cmd_bestk(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    deco = decompose(graph, threads=args.threads)
    pool = SimulatedPool(threads=args.threads)
    result = find_best_k(graph, deco.coreness, args.metric, pool)
    print(f"metric : {args.metric}")
    print(f"best k : {result.best_k} (score {result.best_score:.6f})")
    print("score per k:")
    for k, score in enumerate(result.scores):
        marker = "  <== best" if k == result.best_k else ""
        print(f"  k={k:4d}: {score:12.6f}{marker}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import analysis_report

    graph = _load_graph(args)
    print(analysis_report(graph, threads=args.threads))
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    print(f"{'name':16}{'abbrev':8}description")
    for name in dataset_names():
        spec = get_spec(name)
        print(f"{spec.name:16}{spec.abbrev:8}{spec.description}")
    return 0


_COMMANDS = {
    "stats": _cmd_stats,
    "report": _cmd_report,
    "decompose": _cmd_decompose,
    "search": _cmd_search,
    "bestk": _cmd_bestk,
    "datasets": _cmd_datasets,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
