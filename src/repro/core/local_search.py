"""RC — local k-core search, and an HCD construction built on it.

A *local k-core search* from vertex ``v`` (paper Section III-E) is a
BFS over vertices whose coreness is at least ``c(v)``; it reconstructs
the k-core containing ``v`` for ``k = c(v)``.  The divide-and-conquer
paradigm the paper examines (and rejects) leans on RC to merge partial
tree nodes and confirm parent-child relations; Table III's ``RC``
column measures its cost.

:func:`rc_build_hcd` constructs a *complete* HCD purely from local
searches: for every level k, each k-core is materialized by a fresh
BFS and its children are the chain tops discovered inside it.  The
result is correct — it serves as a third independent construction used
by the test oracle — but the repeated component walks cost
``O(sum_k |K_k|)``, which is why the paper finds RC 4-125x slower than
PHCD.
"""

from __future__ import annotations

import numpy as np

from repro.core.hcd import HCD, HCDBuilder
from repro.graph.graph import Graph
from repro.parallel.context import ThreadContext
from repro.parallel.scheduler import SimulatedPool

__all__ = ["local_core_search", "rc_build_hcd"]


def local_core_search(
    graph: Graph,
    coreness: np.ndarray,
    v: int,
    level: int | None = None,
    ctx: ThreadContext | None = None,
) -> np.ndarray:
    """Vertices of the k-core containing ``v``, for ``k = level``.

    ``level`` defaults to ``c(v)``.  Work (one charge per scanned edge)
    is charged to ``ctx`` when provided.
    """
    coreness = np.asarray(coreness)
    k = int(coreness[v]) if level is None else int(level)
    if coreness[v] < k:
        return np.empty(0, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    seen = {int(v)}
    stack = [int(v)]
    while stack:
        u = stack.pop()
        if ctx is not None:
            ctx.charge(1)
        for w in indices[indptr[u] : indptr[u + 1]]:
            w = int(w)
            if ctx is not None:
                ctx.charge(1)
            if coreness[w] >= k and w not in seen:
                seen.add(w)
                stack.append(w)
    return np.asarray(sorted(seen), dtype=np.int64)


def rc_build_hcd(
    graph: Graph,
    coreness: np.ndarray,
    pool: SimulatedPool,
) -> HCD:
    """Construct the HCD with per-level local k-core searches.

    For each k from kmax down to 0, every k-core with a non-empty
    k-shell becomes a tree node; the search that materializes the core
    also finds the node's children (the current chain-top of every
    higher-coreness vertex absorbed).  Component discovery within a
    level is serial, but each discovered core's (re-)walk is charged in
    a parallel region — the best case for an RC-based builder.
    """
    coreness = np.asarray(coreness, dtype=np.int64)
    n = graph.num_vertices
    builder = HCDBuilder(n)
    if n == 0:
        return builder.build()
    kmax = int(coreness.max())
    indptr, indices = graph.indptr, graph.indices
    # chain_top[v]: tree node currently topping the chain of v's core.
    chain_top = np.full(n, -1, dtype=np.int64)

    order = np.argsort(coreness, kind="stable")[::-1]  # descending coreness
    for k in range(kmax, -1, -1):
        shell = [int(v) for v in order if coreness[v] == k]
        if not shell:
            continue
        # Discover the k-cores seeded at shell vertices (serial sweep).
        assigned: set[int] = set()
        components: list[list[int]] = []
        for seed in shell:
            if seed in assigned:
                continue
            comp: list[int] = []
            stack = [seed]
            seen = {seed}
            while stack:
                u = stack.pop()
                comp.append(u)
                for w in indices[indptr[u] : indptr[u + 1]]:
                    w = int(w)
                    if coreness[w] >= k and w not in seen:
                        seen.add(w)
                        stack.append(w)
            assigned.update(x for x in comp if coreness[x] == k)
            components.append(comp)

        nodes = [builder.new_node(k) for _ in components]

        def absorb(idx: int, ctx) -> None:
            node = nodes[idx]
            children: set[int] = set()
            for u in components[idx]:
                ctx.charge(1)
                ctx.charge(int(indptr[u + 1] - indptr[u]))  # re-walk cost
                if coreness[u] == k:
                    builder.add_vertex(node, u)
                else:
                    top = int(chain_top[u])
                    if top >= 0:
                        children.add(top)
            for child in sorted(children):
                builder.set_parent(child, node)
            for u in components[idx]:
                ctx.write(("rc_chain", int(u)), 0.0)
                chain_top[u] = node  # sani: ok - components are disjoint vertex sets

        pool.parallel_for(
            list(range(len(components))), absorb, label=f"rc:level_{k}"
        )
    return builder.build()
