"""The hierarchical core decomposition (HCD) index.

The HCD of a graph (Definition 3) is a forest: each *k-core tree node*
stores the vertices of coreness ``k`` inside one particular k-core
(Definition 1), and tree edges record which k-core each k'-core is
nested in (Definition 2).  :class:`HCD` is the index of Figure 2:

* ``V(T_i)``  — :meth:`vertices_of`
* ``P(T_i)``  — :attr:`parent`
* ``C(T_i)``  — :attr:`children`
* ``tid(v)``  — :attr:`tid`

Construction algorithms (:mod:`repro.core.lcps`,
:mod:`repro.core.phcd`) assemble an HCD through :class:`HCDBuilder`;
the index itself is immutable and exposes traversal, reconstruction of
original k-cores, canonicalization (for cross-algorithm equality
tests), and a full structural :meth:`validate` used by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HierarchyError
from repro.graph.graph import Graph

__all__ = ["HCD", "HCDBuilder", "HCDStats"]


@dataclass(frozen=True)
class HCDStats:
    """Aggregate shape statistics of an HCD forest."""

    num_nodes: int
    num_roots: int
    max_depth: int
    kmax: int
    largest_node: int


class HCD:
    """Immutable hierarchical core decomposition index.

    Parameters mirror the paper's index overview (Section II-B).  Use
    :class:`HCDBuilder` or an algorithm in :mod:`repro.core` to create
    instances; the constructor only wires and freezes the arrays.
    """

    __slots__ = (
        "node_coreness",
        "parent",
        "children",
        "tid",
        "_node_vertices",
        "_depths",
    )

    def __init__(
        self,
        node_coreness: np.ndarray,
        parent: np.ndarray,
        tid: np.ndarray,
        node_vertices: list[np.ndarray],
    ) -> None:
        self.node_coreness = np.asarray(node_coreness, dtype=np.int64)
        self.parent = np.asarray(parent, dtype=np.int64)
        self.tid = np.asarray(tid, dtype=np.int64)
        self._node_vertices = [
            np.asarray(vs, dtype=np.int64) for vs in node_vertices
        ]
        t = self.num_nodes
        children: list[list[int]] = [[] for _ in range(t)]
        for node in range(t):
            pa = int(self.parent[node])
            if pa >= 0:
                children[pa].append(node)
        self.children = children
        self._depths: np.ndarray | None = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of k-core tree nodes, the paper's ``|T|``."""
        return int(self.node_coreness.size)

    @property
    def num_vertices(self) -> int:
        """Number of graph vertices indexed by ``tid``."""
        return int(self.tid.size)

    @property
    def kmax(self) -> int:
        """Largest coreness among tree nodes (0 for an empty forest)."""
        return int(self.node_coreness.max()) if self.num_nodes else 0

    def vertices_of(self, node: int) -> np.ndarray:
        """``V(T_node)``: vertices stored directly in the tree node."""
        return self._node_vertices[node]

    def roots(self) -> list[int]:
        """Tree nodes with no parent (one per connected component chain)."""
        return [int(i) for i in np.flatnonzero(self.parent < 0)]

    def node_of_vertex(self, v: int) -> int:
        """``tid(v)``: the tree node containing vertex ``v``."""
        return int(self.tid[v])

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------

    def depths(self) -> np.ndarray:
        """Depth of each node (roots at 0); cached."""
        if self._depths is None:
            from repro.parallel.accumulate import tree_depths

            self._depths = tree_depths(self.parent)
        return self._depths

    def nodes_bottom_up(self) -> list[int]:
        """Node ids ordered deepest-first (children before parents)."""
        depths = self.depths()
        order = np.argsort(depths, kind="stable")[::-1]
        return [int(i) for i in order]

    def nodes_top_down(self) -> list[int]:
        """Node ids ordered shallowest-first (parents before children)."""
        return list(reversed(self.nodes_bottom_up()))

    def subtree_nodes(self, node: int) -> list[int]:
        """All nodes in the subtree rooted at ``node`` (preorder)."""
        out: list[int] = []
        stack = [node]
        while stack:
            cur = stack.pop()
            out.append(cur)
            stack.extend(reversed(self.children[cur]))
        return out

    def reconstruct_core(self, node: int) -> np.ndarray:
        """Vertex set of the node's *original k-core* (subtree union).

        A k-core equals its tree node's vertices plus all offspring tree
        nodes' vertices (Section II-B), sorted ascending.
        """
        parts = [self._node_vertices[i] for i in self.subtree_nodes(node)]
        return np.sort(np.concatenate(parts)) if parts else np.empty(0, dtype=np.int64)

    def core_node_containing(self, v: int, k: int) -> int:
        """Tree node whose original core is the k-core containing ``v``.

        The local k-core query of ShellStruct / CL-Tree (paper Section
        VII): walk up from ``tid(v)`` to the deepest ancestor whose
        coreness is still >= k.  Because no tree node exists between
        that ancestor and its parent, the ancestor's original core *is*
        the k-core containing ``v`` for every k in
        ``(parent coreness, node coreness]``.  Output-sensitive: the
        walk costs the hierarchy depth, not the graph size.

        Returns -1 when ``k`` exceeds ``v``'s coreness (no such core).
        """
        node = int(self.tid[v])
        if k > int(self.node_coreness[node]):
            return -1
        while True:
            pa = int(self.parent[node])
            if pa < 0 or int(self.node_coreness[pa]) < k:
                return node
            node = pa

    def k_core_containing(self, v: int, k: int) -> np.ndarray:
        """Vertex set of the k-core containing ``v`` (empty if none)."""
        node = self.core_node_containing(v, k)
        if node < 0:
            return np.empty(0, dtype=np.int64)
        return self.reconstruct_core(node)

    def maximal_core_nodes(self, k: int) -> list[int]:
        """Tree nodes whose original cores are exactly the k-cores of G.

        These are the nodes with coreness >= k whose parent sits below
        k — one per connected k-core (the k-core *set* partition).
        """
        out = []
        for node in range(self.num_nodes):
            if int(self.node_coreness[node]) < k:
                continue
            pa = int(self.parent[node])
            if pa < 0 or int(self.node_coreness[pa]) < k:
                out.append(node)
        return out

    # ------------------------------------------------------------------
    # comparison & validation
    # ------------------------------------------------------------------

    def canonical_form(
        self,
    ) -> list[tuple[int, tuple[int, ...], int, tuple[int, ...]]]:
        """Order-independent description for equality across algorithms.

        Each entry is ``(k, vertices, parent_k, parent_vertices_min)``
        keyed purely by content; two HCDs of the same graph are equal
        iff their canonical forms are equal, regardless of node ids.
        """
        entries = []
        for node in range(self.num_nodes):
            verts = tuple(int(v) for v in np.sort(self._node_vertices[node]))
            pa = int(self.parent[node])
            if pa < 0:
                pkey: tuple[int, tuple[int, ...]] = (-1, ())
            else:
                pkey = (
                    int(self.node_coreness[pa]),
                    tuple(int(v) for v in np.sort(self._node_vertices[pa])),
                )
            entries.append(
                (int(self.node_coreness[node]), verts, pkey[0], pkey[1])
            )
        entries.sort()
        return entries

    def equivalent_to(self, other: "HCD") -> bool:
        """Content equality ignoring node numbering."""
        return self.canonical_form() == other.canonical_form()

    def stats(self) -> HCDStats:
        """Aggregate shape statistics (used by Table II's ``|T|``)."""
        depths = self.depths() if self.num_nodes else np.zeros(0, dtype=np.int64)
        return HCDStats(
            num_nodes=self.num_nodes,
            num_roots=len(self.roots()),
            max_depth=int(depths.max()) if depths.size else 0,
            kmax=self.kmax,
            largest_node=max(
                (len(vs) for vs in self._node_vertices), default=0
            ),
        )

    def validate(self, graph: Graph, coreness: np.ndarray) -> None:
        """Check every HCD invariant; raise :class:`HierarchyError` if broken.

        Invariants checked (Definitions 1-3):

        1. the node vertex sets partition ``V`` and agree with ``tid``;
        2. every vertex in a node has coreness equal to the node's k;
        3. parent coreness is strictly smaller than child coreness;
        4. each reconstructed original k-core is connected in ``G``;
        5. each reconstructed k-core is exactly a maximal connected
           subgraph of ``{v : c(v) >= k}`` — i.e. a true k-core;
        6. the parent's reconstructed core strictly contains the child's.
        """
        coreness = np.asarray(coreness, dtype=np.int64)
        n = graph.num_vertices
        seen = np.zeros(n, dtype=bool)
        for node in range(self.num_nodes):
            k = int(self.node_coreness[node])
            verts = self._node_vertices[node]
            if verts.size == 0:
                raise HierarchyError(f"tree node {node} is empty")
            for v in verts:
                v = int(v)
                if seen[v]:
                    raise HierarchyError(f"vertex {v} appears in two tree nodes")
                seen[v] = True
                if int(self.tid[v]) != node:
                    raise HierarchyError(f"tid({v}) != owning node {node}")
                if int(coreness[v]) != k:
                    raise HierarchyError(
                        f"vertex {v} has coreness {coreness[v]} in a {k}-node"
                    )
            pa = int(self.parent[node])
            if pa >= 0 and int(self.node_coreness[pa]) >= k:
                raise HierarchyError(
                    f"parent coreness {self.node_coreness[pa]} >= child {k}"
                )
        if not bool(seen.all()):
            missing = int(np.flatnonzero(~seen)[0])
            raise HierarchyError(f"vertex {missing} missing from the HCD")

        # Reconstruction checks against the direct definition.
        for node in range(self.num_nodes):
            k = int(self.node_coreness[node])
            core = self.reconstruct_core(node)
            members = set(int(v) for v in core)
            if any(int(coreness[v]) < k for v in members):
                raise HierarchyError(f"node {node}: core contains low-coreness vertex")
            # connectivity + maximality via BFS in the >=k subgraph
            start = int(core[0])
            comp = {start}
            stack = [start]
            while stack:
                u = stack.pop()
                for w in graph.neighbors(u):
                    w = int(w)
                    if coreness[w] >= k and w not in comp:
                        comp.add(w)
                        stack.append(w)
            if comp != members:
                raise HierarchyError(
                    f"node {node}: reconstructed {k}-core is not a maximal "
                    f"connected component of the >= {k} subgraph"
                )
            pa = int(self.parent[node])
            if pa >= 0:
                parent_members = set(int(v) for v in self.reconstruct_core(pa))
                if not members < parent_members:
                    raise HierarchyError(
                        f"node {node}: not strictly contained in parent's core"
                    )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    #: flat-array serialization keys, in :meth:`to_arrays` order
    ARRAY_KEYS = (
        "node_coreness", "parent", "tid", "member_offsets", "members"
    )

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flat-array form of the index (node vertex sets in CSR layout).

        The serving snapshot store embeds these arrays (alongside the
        graph CSR and precomputed search state) in its versioned
        bundles; :meth:`save` writes exactly this dictionary.
        """
        offsets = np.zeros(self.num_nodes + 1, dtype=np.int64)
        for node, verts in enumerate(self._node_vertices):
            offsets[node + 1] = offsets[node] + verts.size
        flat = (
            np.concatenate(self._node_vertices)
            if self.num_nodes
            else np.empty(0, dtype=np.int64)
        )
        return {
            "node_coreness": self.node_coreness,
            "parent": self.parent,
            "tid": self.tid,
            "member_offsets": offsets,
            "members": flat,
        }

    @classmethod
    def from_arrays(cls, arrays: dict) -> "HCD":
        """Rebuild an index from :meth:`to_arrays` output.

        The arrays are treated as untrusted (they may come off disk):
        missing keys, a malformed member-offsets CSR, or out-of-range
        values raise :class:`HierarchyError` naming the offender
        instead of detonating as a numpy indexing error.
        """
        for key in cls.ARRAY_KEYS:
            if key not in arrays:
                raise HierarchyError(f"HCD arrays missing {key!r}")
        node_coreness = np.asarray(arrays["node_coreness"], dtype=np.int64)
        parent = np.asarray(arrays["parent"], dtype=np.int64)
        tid = np.asarray(arrays["tid"], dtype=np.int64)
        offsets = np.asarray(arrays["member_offsets"], dtype=np.int64)
        members = np.asarray(arrays["members"], dtype=np.int64)
        t = node_coreness.size
        if parent.size != t:
            raise HierarchyError(
                f"parent has {parent.size} entries for {t} nodes"
            )
        if offsets.size != t + 1:
            raise HierarchyError(
                f"member_offsets has {offsets.size} entries, expected {t + 1}"
            )
        if t and (offsets[0] != 0 or offsets[-1] != members.size):
            raise HierarchyError(
                "member_offsets endpoints do not bracket members "
                f"(got [{int(offsets[0])}, {int(offsets[-1])}] for "
                f"{members.size} members)"
            )
        if np.any(np.diff(offsets) < 0):
            v = int(np.flatnonzero(np.diff(offsets) < 0)[0])
            raise HierarchyError(f"member_offsets decreases at node {v}")
        if parent.size and int(parent.max()) >= t:
            raise HierarchyError(
                f"parent id {int(parent.max())} outside [0, {t})"
            )
        node_vertices = [
            members[offsets[i] : offsets[i + 1]] for i in range(t)
        ]
        return cls(
            node_coreness=node_coreness,
            parent=parent,
            tid=tid,
            node_vertices=node_vertices,
        )

    def save(self, path) -> None:
        """Persist the index with :func:`numpy.savez_compressed`.

        The HCD is the paper's O(n)-space subgraph index; persisting it
        lets later sessions answer core queries without re-running
        construction.  Node vertex sets are stored in CSR layout.  The
        serving layer's versioned snapshot store
        (:mod:`repro.serve.catalog`) extends this single-file form with
        manifests, checksums, and atomic publication.
        """
        np.savez_compressed(path, **self.to_arrays())

    @classmethod
    def load(cls, path) -> "HCD":
        """Reload an index stored with :meth:`save`."""
        with np.load(path) as data:
            return cls.from_arrays({key: data[key] for key in data})

    def __repr__(self) -> str:
        return (
            f"HCD(nodes={self.num_nodes}, vertices={self.num_vertices}, "
            f"kmax={self.kmax})"
        )


class HCDBuilder:
    """Mutable assembler used by the construction algorithms."""

    def __init__(self, num_vertices: int) -> None:
        self._num_vertices = num_vertices
        self._coreness: list[int] = []
        self._parent: list[int] = []
        self._vertices: list[list[int]] = []
        self.tid = np.full(num_vertices, -1, dtype=np.int64)

    def new_node(self, k: int) -> int:
        """Create an empty tree node at coreness ``k``; return its id."""
        node = len(self._coreness)
        self._coreness.append(int(k))
        self._parent.append(-1)
        self._vertices.append([])
        return node

    def add_member(self, node: int, v: int) -> None:
        """Append ``v`` to ``node``'s member list *without* writing ``tid``.

        The parallel construction (PHCD step 3) publishes ``tid``
        itself — via CAS for pivots, per-item stores otherwise — so the
        builder must not issue a second, unrecorded write.
        """
        self._vertices[node].append(int(v))

    def add_vertex(self, node: int, v: int) -> None:
        """Place vertex ``v`` into tree node ``node`` (serial callers)."""
        self.add_member(node, v)
        self.tid[v] = node

    def set_parent(self, child: int, parent: int) -> None:
        """Record ``P(T_child) = T_parent``."""
        self._parent[child] = int(parent)

    @property
    def num_nodes(self) -> int:
        """Nodes created so far."""
        return len(self._coreness)

    def coreness_of(self, node: int) -> int:
        """Coreness of a node created earlier."""
        return self._coreness[node]

    def build(self) -> HCD:
        """Freeze into an immutable :class:`HCD`."""
        if np.any(self.tid < 0):
            missing = int(np.flatnonzero(self.tid < 0)[0])
            raise HierarchyError(f"vertex {missing} was never placed in a node")
        return HCD(
            node_coreness=np.asarray(self._coreness, dtype=np.int64),
            parent=np.asarray(self._parent, dtype=np.int64),
            tid=self.tid,
            node_vertices=[np.asarray(vs, dtype=np.int64) for vs in self._vertices],
        )
