"""Core decomposition and HCD construction algorithms."""

from repro.core.approx import approx_core_decomposition
from repro.core.decomposition import core_decomposition, k_core_members, shell_sizes
from repro.core.distributed import mpm_core_decomposition
from repro.core.julienne import julienne_core_decomposition
from repro.core.divide_conquer import DncResult, dnc_build_hcd
from repro.core.hcd import HCD, HCDBuilder, HCDStats
from repro.core.lcps import lcps_build_hcd
from repro.core.local_search import local_core_search, rc_build_hcd
from repro.core.lower_bound import lower_bound_cost
from repro.core.park import park_core_decomposition
from repro.core.partition import label_propagation_partition
from repro.core.phcd import phcd_build_hcd
from repro.core.pkc import pkc_core_decomposition
from repro.core.vertex_rank import VertexRankResult, compute_vertex_rank

__all__ = [
    "core_decomposition",
    "k_core_members",
    "shell_sizes",
    "approx_core_decomposition",
    "mpm_core_decomposition",
    "julienne_core_decomposition",
    "pkc_core_decomposition",
    "park_core_decomposition",
    "compute_vertex_rank",
    "VertexRankResult",
    "HCD",
    "HCDBuilder",
    "HCDStats",
    "lcps_build_hcd",
    "phcd_build_hcd",
    "rc_build_hcd",
    "local_core_search",
    "lower_bound_cost",
    "label_propagation_partition",
    "dnc_build_hcd",
    "DncResult",
]
