"""LCPS — serial HCD construction by priority search (Matula & Beck).

The state-of-the-art serial algorithm the paper compares against.  LCPS
performs a *level component priority search*: vertices are visited in
order of priority ``pri(w) = max over visited neighbors v of
min(c(w), c(v))``, maintained in per-priority bucket arrays ("multiple
dynamic arrays" — the constant-factor cost the paper attributes LCPS's
slowness to, which we keep for a fair comparison).

The hierarchy is assembled with a stack of *open* tree nodes along the
current root-to-leaf chain:

* visiting ``v`` at priority ``p`` first **closes** every open node
  with coreness ``> p`` (their cores are exhausted — otherwise a
  higher-priority vertex would have been chosen);
* if ``c(v) == p`` and the top open node sits at ``p``, ``v`` joins it;
* otherwise ``v`` **opens** a new node at ``c(v)`` under the current
  top; when the new node sits at exactly ``p`` and nodes were just
  closed, the shallowest closed node is *re-parented* under the new
  node — this is the paper's "adjust the HCD" step, which inserts a
  discovered intermediate core between a deeper core and its old
  parent (e.g. a 3-core found after the 4-core inside it).

Each connected component's search starts at an unvisited vertex of
minimum coreness (taken from the vertex-rank order), so the component's
root node is its outermost core and the stack never underflows.

Work is O(m): every edge relaxes one bucket entry.
"""

from __future__ import annotations

import numpy as np

from repro.core.hcd import HCD, HCDBuilder
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool

__all__ = ["lcps_build_hcd"]


class _BucketQueue:
    """Max-priority queue over small integer priorities, with lazy entries.

    One dynamic array per priority level; stale entries (vertex since
    re-pushed at a higher priority, or visited) are skipped on pop.
    This mirrors the structure the paper describes LCPS using.
    """

    __slots__ = ("buckets", "current", "pushes")

    def __init__(self, kmax: int) -> None:
        self.buckets: list[list[int]] = [[] for _ in range(kmax + 1)]
        self.current = -1  # highest possibly-nonempty priority
        self.pushes = 0

    def push(self, v: int, priority: int) -> None:
        self.buckets[priority].append(v)
        self.pushes += 1
        if priority > self.current:
            self.current = priority

    def pop_max(
        self, pri: np.ndarray, visited: np.ndarray
    ) -> tuple[int, int] | None:
        """Highest-priority live entry as ``(vertex, priority)``."""
        while self.current >= 0:
            bucket = self.buckets[self.current]
            while bucket:
                v = bucket.pop()
                if not visited[v] and pri[v] == self.current:
                    return v, self.current
            self.current -= 1
        return None


def lcps_build_hcd(
    graph: Graph,
    coreness: np.ndarray,
    pool: SimulatedPool | None = None,
) -> HCD:
    """Build the HCD of ``graph`` with the serial LCPS algorithm.

    ``coreness`` is the precomputed core decomposition (both LCPS and
    PHCD take it as input, per the paper).  When ``pool`` is given the
    O(m) serial work — bucket pushes, pops, and stack maintenance — is
    charged to its simulated clock.
    """
    coreness = np.asarray(coreness, dtype=np.int64)
    n = graph.num_vertices
    builder = HCDBuilder(n)
    if n == 0:
        return builder.build()
    kmax = int(coreness.max())
    indptr, indices = graph.indptr, graph.indices

    visited = np.zeros(n, dtype=bool)
    pri = np.full(n, -1, dtype=np.int64)
    queue = _BucketQueue(kmax)
    charged = 0

    # Component starts in ascending (coreness, id): guarantees each
    # component's first visit is at its minimum coreness.
    starts = np.lexsort((np.arange(n), coreness))

    # Stack of open tree nodes as (node_id, k); parallel arrays.
    stack_nodes: list[int] = []
    stack_levels: list[int] = []

    def visit(v: int, p: int) -> None:
        nonlocal charged
        visited[v] = True
        c = int(coreness[v])
        # Close open nodes above the arrival priority.
        shallowest_closed = -1
        while stack_levels and stack_levels[-1] > p:
            shallowest_closed = stack_nodes.pop()
            stack_levels.pop()
            charged += 1
        if stack_levels and stack_levels[-1] == c and c == p:
            node = stack_nodes[-1]
        else:
            parent = stack_nodes[-1] if stack_nodes else -1
            node = builder.new_node(c)
            if parent >= 0:
                builder.set_parent(node, parent)
            stack_nodes.append(node)
            stack_levels.append(c)
            if shallowest_closed >= 0 and c == p:
                # "Adjust the HCD": the closed chain belongs inside the
                # freshly discovered p-core.
                builder.set_parent(shallowest_closed, node)
            charged += 1
        builder.add_vertex(node, v)
        # Relax unvisited neighbors: each relaxation reads the
        # neighbor's priority slot, compares coreness, and consults the
        # bucket structure — three random accesses, no locality.
        for u in indices[indptr[v] : indptr[v + 1]]:
            u = int(u)
            charged += 3
            if visited[u]:
                continue
            new_pri = min(c, int(coreness[u]))
            if new_pri > pri[u]:
                pri[u] = new_pri
                queue.push(u, new_pri)

    for sv in starts:
        sv = int(sv)
        if visited[sv]:
            continue
        # New component: close every open node, start at the minimum-
        # coreness vertex with p equal to its own coreness.
        stack_nodes.clear()
        stack_levels.clear()
        visit(sv, int(coreness[sv]))
        while True:
            item = queue.pop_max(pri, visited)
            if item is None:
                break
            visit(item[0], item[1])

    if pool is not None:
        with pool.serial_region("lcps") as ctx:
            # Bucket-array traffic dominates LCPS's constant factor (the
            # paper: "the priority function is maintained in multiple
            # dynamic arrays which are costly especially for large
            # graphs").  A push touches the priority slot, the dynamic
            # array tail (growth amortization), and the max-priority
            # cursor; a pop re-validates its entry.  These constants are
            # why serial PHCD overtakes LCPS by 1.24-2.33x in Table III.
            ctx.charge(charged + 6 * queue.pushes)
    return builder.build()
