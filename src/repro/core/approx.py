"""(1+delta)-approximate parallel core decomposition in low depth.

The related-work context of Liu et al. [25]: exact peeling has depth
proportional to the peeling order, but geometric *threshold peeling*
finishes in ``O(log_{1+delta} dmax)`` threshold phases of parallel
sub-rounds.  At threshold ``lambda`` the algorithm repeatedly removes
every remaining vertex of current degree <= lambda; removed vertices
receive the estimate ``lambda``.

Guarantee (checked by the tests): a vertex removed at threshold
``lambda_i`` survived exhaustive peeling at ``lambda_{i-1}``, so its
coreness lies in ``(lambda_{i-1}, lambda_i]`` — the estimate
overshoots the true coreness by at most a factor ``1 + delta`` (and
never undershoots).
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.parallel.atomics import AtomicArray
from repro.parallel.scheduler import SimulatedPool

__all__ = ["approx_core_decomposition"]


def approx_core_decomposition(
    graph: Graph,
    pool: SimulatedPool,
    delta: float = 0.5,
) -> tuple[np.ndarray, int]:
    """Approximate coreness via geometric threshold peeling.

    Returns ``(estimate, phases)`` where ``coreness <= estimate <
    (1 + delta) * coreness`` element-wise (estimate 0 exactly for
    coreness-0 vertices) and ``phases`` counts the geometric thresholds
    used.
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    n = graph.num_vertices
    estimate = np.zeros(n, dtype=np.float64)
    if n == 0:
        return estimate, 0
    indptr, indices = graph.indptr, graph.indices
    degree = AtomicArray(n, dtype=np.int64, name="approx_deg")
    degree.data[:] = graph.degrees()
    settled = np.zeros(n, dtype=bool)
    remaining = n
    phases = 0
    threshold = 0.0  # phase 0 removes isolated vertices exactly
    while remaining > 0:
        phases += 1
        # exhaustively peel at the current threshold
        while True:
            frontier = [
                int(v)
                for v in np.flatnonzero(~settled)
                if degree.data[v] <= threshold
            ]
            with pool.serial_region(f"approx:scan_t{phases}") as ctx:
                ctx.charge(int(np.count_nonzero(~settled)) + 1)
            if not frontier:
                break
            for v in frontier:
                settled[v] = True

            def peel(v: int, ctx) -> None:
                # each frontier vertex owns its estimate slot
                ctx.write(("approx_est", int(v)))
                estimate[v] = threshold
                for u in indices[indptr[v] : indptr[v + 1]]:
                    u = int(u)
                    ctx.charge(1)
                    if not settled[u]:
                        degree.add(ctx, u, -1)

            pool.parallel_for(frontier, peel, label=f"approx:peel_t{phases}")
            remaining -= len(frontier)
        threshold = max(1.0, threshold * (1.0 + delta))
    return estimate, phases
