"""PKC — parallel k-core decomposition (Kabir & Madduri, IPDPSW'17).

PKC peels vertices level-synchronously: at level ``k`` every remaining
vertex whose current degree is ``<= k`` gets coreness ``k`` and is
removed; removals decrement neighbor degrees atomically, and any
neighbor dropping to ``<= k`` joins the next sub-round's frontier.  Each
thread keeps a *local* frontier buffer to cut synchronization — PKC's
headline optimization over ParK — which here is modelled by charging
the buffer appends as ordinary work rather than shared atomics.

Total work is ``O(n * kmax + m)`` (each level rescans undecided
vertices once; every edge is relaxed once), matching the paper's stated
bound.  Output is bit-identical to Batagelj–Zaversnik, which the test
suite asserts.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.parallel.atomics import AtomicArray
from repro.parallel.scheduler import SimulatedPool

__all__ = ["pkc_core_decomposition"]


def pkc_core_decomposition(graph: Graph, pool: SimulatedPool) -> np.ndarray:
    """Coreness of every vertex, computed level-synchronously on ``pool``."""
    n = graph.num_vertices
    coreness = np.zeros(n, dtype=np.int64)
    if n == 0:
        return coreness
    indptr, indices = graph.indptr, graph.indices
    degree = AtomicArray(n, dtype=np.int64, name="pkc_deg")
    degree.data[:] = graph.degrees()
    settled = np.zeros(n, dtype=bool)
    remaining = n
    k = 0
    while remaining > 0:
        # SimProf attribution: one phase per peeled level (free).
        with pool.phase(f"pkc:level-{k}"):
            # Scan for the level-k seed frontier among undecided vertices.
            def scan(v: int, ctx) -> int:
                # charged atomic load (earlier peel rounds decremented it)
                if degree.load(ctx, v) <= k:
                    return v
                return -1

            undecided = np.flatnonzero(~settled)
            # items are positions into an n-sized mask  # prove: item in [0, n)
            hits = pool.parallel_for(
                [int(v) for v in undecided], scan, label=f"pkc:scan_k{k}"
            )
            frontier = [v for v in hits if v >= 0]
            while frontier:
                for v in frontier:
                    settled[v] = True
                next_parts: list[list[int]] = [[] for _ in range(pool.threads)]

                def process(v: int, ctx) -> None:
                    # each frontier vertex owns its coreness slot
                    ctx.write(("pkc_core", int(v)))
                    coreness[v] = k
                    for u in indices[indptr[v] : indptr[v + 1]]:
                        u = int(u)
                        ctx.charge(1)
                        if settled[u]:
                            continue
                        # branch on the fetch-add result, never on a raw
                        # re-read of the slot: concurrent decrements would
                        # make the re-read miss (or duplicate) the handoff
                        old = degree.add(ctx, u, -1)
                        if old - 1 == k:
                            # local buffer append: PKC's low-sync design
                            ctx.charge(1)
                            next_parts[ctx.thread_id].append(u)

                # frontier holds vertex ids  # prove: item in [0, n)
                pool.parallel_for(frontier, process, label=f"pkc:peel_k{k}")
                remaining -= len(frontier)
                merged: list[int] = []
                seen: set[int] = set()
                for part in next_parts:
                    for u in part:
                        if not settled[u] and u not in seen:
                            seen.add(u)
                            merged.append(u)
                frontier = merged
        k += 1
    return coreness
