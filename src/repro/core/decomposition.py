"""Serial core decomposition (Batagelj & Zaversnik, O(m)).

The bin-sort peeling algorithm: vertices are kept sorted by current
degree in a flat array with per-degree bin boundaries; the minimum
degree vertex is peeled, its coreness is its degree at removal, and
each higher-degree neighbor is swapped one bin down.  This is the
reference coreness oracle for PKC/ParK and the preprocessing input of
LCPS and PHCD (both take "the core decomposition of G" as given).
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool
from repro.sanitizer.memcheck import san_empty

__all__ = ["core_decomposition", "k_core_members", "shell_sizes"]


def core_decomposition(
    graph: Graph,
    pool: SimulatedPool | None = None,
) -> np.ndarray:
    """Coreness of every vertex via Batagelj–Zaversnik peeling.

    When ``pool`` is given, the O(m) serial work is charged to its
    simulated clock inside a serial region (this is the serial baseline
    the paper's ``PKC + LCPS`` stacks are measured against).
    """
    n = graph.num_vertices
    coreness = np.zeros(n, dtype=np.int64)
    if n == 0:
        return coreness
    degree = graph.degrees().astype(np.int64).copy()
    max_deg = int(degree.max())

    # bin_start[d] = offset of the block of vertices with current degree d
    counts = np.bincount(degree, minlength=max_deg + 1)
    bin_start = np.zeros(max_deg + 2, dtype=np.int64)
    np.cumsum(counts, out=bin_start[1 : max_deg + 2])

    vert = np.argsort(degree, kind="stable").astype(np.int64)  # sorted by degree
    pos = san_empty(n, np.int64, name="bz_pos")
    pos[vert] = np.arange(n, dtype=np.int64)
    cursor = bin_start[: max_deg + 1].copy()  # mutable bin starts

    charged_ops = 0
    indptr, indices = graph.indptr, graph.indices
    for i in range(n):
        v = int(vert[i])
        coreness[v] = degree[v]
        charged_ops += 1
        for u in indices[indptr[v] : indptr[v + 1]]:
            u = int(u)
            charged_ops += 1
            if degree[u] > degree[v]:
                du = int(degree[u])
                pu = int(pos[u])
                pw = int(cursor[du])
                w = int(vert[pw])
                if u != w:
                    vert[pu], vert[pw] = w, u
                    pos[u], pos[w] = pw, pu
                cursor[du] += 1
                degree[u] -= 1
    if pool is not None:
        with pool.serial_region("core_decomposition") as ctx:
            ctx.charge(charged_ops)
    return coreness


def k_core_members(coreness: np.ndarray, k: int) -> np.ndarray:
    """Vertices of the k-core *set* (all vertices with coreness >= k)."""
    return np.flatnonzero(np.asarray(coreness) >= k)


def shell_sizes(coreness: np.ndarray) -> np.ndarray:
    """``sizes[k]`` = number of vertices whose coreness is exactly k."""
    coreness = np.asarray(coreness, dtype=np.int64)
    if coreness.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(coreness, minlength=int(coreness.max()) + 1)
