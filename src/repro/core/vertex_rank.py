"""Parallel vertex-rank computation (paper Algorithm 1).

The *vertex rank* (Definition 4) orders vertices by ``(coreness, id)``.
Algorithm 1 computes it in O(n) work: each thread bins its slice of
vertices by coreness into per-thread bins ``HL[p][k]``; concatenating
``HL[1..p][k]`` yields the k-shell ``H_k`` in ascending-id order, and
concatenating the shells yields ``Vsort``, whose positions are the
ranks.  The same pass therefore also materializes every k-shell, which
PHCD consumes directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool
from repro.sanitizer.memcheck import san_empty

__all__ = ["VertexRankResult", "compute_vertex_rank"]


@dataclass
class VertexRankResult:
    """Output of Algorithm 1.

    Attributes
    ----------
    rank:
        ``rank[v]`` is the position of ``v`` in the ``(coreness, id)``
        order; lower rank = lower coreness (Definition 4).
    shells:
        ``shells[k]`` is the k-shell ``H_k`` as an ascending-id array.
    vsort:
        All vertices sorted by vertex rank (the concatenated shells).
    """

    rank: np.ndarray
    shells: list[np.ndarray]
    vsort: np.ndarray

    @property
    def kmax(self) -> int:
        """Largest coreness present (index of the last shell)."""
        return len(self.shells) - 1


def compute_vertex_rank(
    graph: Graph,
    coreness: np.ndarray,
    pool: SimulatedPool,
) -> VertexRankResult:
    """Run Algorithm 1 on ``pool``; O(n) total work.

    The per-thread bin layout ``HL[p][k]`` of the paper is reproduced:
    static chunking assigns each virtual thread a contiguous ascending-id
    slice (line 2), each thread bins its vertices by coreness (lines
    3-6), shells are the cross-thread concatenations (lines 7-8), and
    ranks are positions in the shell concatenation (lines 9-11).
    """
    n = graph.num_vertices
    coreness = np.asarray(coreness, dtype=np.int64)
    kmax = int(coreness.max()) if n else 0
    p = pool.threads
    # HL[t][k]: vertices of thread t's slice with coreness k, ascending id.
    bins: list[list[list[int]]] = [
        [[] for _ in range(kmax + 1)] for _ in range(p)
    ]

    def bin_vertex(v: int, ctx) -> None:
        ctx.charge(1)
        # The append targets the thread's own bin array; the paper
        # marks it atomic because the bins are shared storage, but no
        # other thread touches HL[p], so it never contends.
        ctx.atomic(("HL", ctx.thread_id, int(coreness[v])), contended=False)
        bins[ctx.thread_id][int(coreness[v])].append(v)

    with pool.phase("vertex-rank"):
        pool.parallel_for(range(n), bin_vertex, label="vertex_rank:bin")

    # Lines 7-8: H_k is the concatenation HL[1][k] + ... + HL[p][k].
    def concat_shell(k: int, ctx) -> np.ndarray:
        parts = [bins[t][k] for t in range(p)]
        total = sum(len(part) for part in parts)
        ctx.charge(total + 1)
        if total == 0:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([np.asarray(part, dtype=np.int64) for part in parts if part])

    with pool.phase("vertex-rank"):
        shells = pool.parallel_for(
            range(kmax + 1), concat_shell, label="vertex_rank:shells"
        )

    # Line 9: Vsort = H_0 + H_1 + ... + H_kmax.
    vsort = (
        np.concatenate([s for s in shells if s.size])
        if any(s.size for s in shells)
        else np.empty(0, dtype=np.int64)
    )

    # Lines 10-11: r(v) = position of v in Vsort.
    rank = san_empty(n, np.int64, name="rank")

    def assign_rank(i: int, ctx) -> None:
        # vsort is a permutation, so rank slots are written exactly
        # once; the detector proves word-disjointness at runtime, the
        # lint cannot prove the bijection statically
        ctx.write(("rank", int(vsort[i])))
        rank[vsort[i]] = i  # sani: ok - permutation scatter, recorded above

    with pool.phase("vertex-rank"):
        pool.parallel_for(range(n), assign_rank, label="vertex_rank:rank")
    return VertexRankResult(rank=rank, shells=shells, vsort=vsort)
