"""PHCD — parallel HCD construction (paper Algorithm 2).

PHCD sidesteps the P-completeness of hierarchy construction (Theorem 1)
with a union-find-based bottom-up paradigm: starting from an empty
graph, the k-shells are added in *descending* k; a pivot-augmented
union-find maintains, for every connected component of the growing
graph, its minimum-vertex-rank member (the *pivot*, Definition 5),
which uniquely identifies the component's top tree node.  Each round
runs four parallel steps over the k-shell (Section III-D):

1. **find k'-core tree nodes** — collect the pivots of components that
   the shell will merge with (their nodes become children this round);
2. **connectivity** — union every shell vertex with its neighbors of
   coreness >= k;
3. **create tree nodes** — group shell vertices by their component's
   (new) pivot; one tree node per distinct pivot;
4. **find parents** — each captured old pivot's node gets the new
   pivot's node as parent.

Total work is O(m) union-find operations — near-linear, matching the
paper's O(n sqrt(p) + m alpha(n) + F) bound on the wait-free structure.

The shell loops use static chunking: shells are contiguous id ranges,
and interleaving them round-robin across threads (dynamic scheduling)
was measured to *increase* simulated time via union-find cache-line
contention — see ``benchmarks/bench_ablations.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.hcd import HCD, HCDBuilder
from repro.core.vertex_rank import VertexRankResult, compute_vertex_rank
from repro.graph.graph import Graph
from repro.parallel.atomics import AtomicArray, AtomicSet
from repro.parallel.scheduler import SimulatedPool
from repro.unionfind.pivot import PivotUnionFind
from repro.unionfind.waitfree import SimulatedWaitFreeUnionFind

__all__ = ["phcd_build_hcd", "SCAN_CHARGE"]

#: Work units per sequentially-scanned adjacency entry.  PHCD streams
#: each shell's CSR rows in order, so the hardware prefetcher hides most
#: of the latency — the contrast with LCPS's random-access priority
#: updates that Table III's serial comparison rests on.
SCAN_CHARGE = 0.2


def phcd_build_hcd(
    graph: Graph,
    coreness: np.ndarray,
    pool: SimulatedPool,
    rank_result: VertexRankResult | None = None,
    use_waitfree: bool | None = None,
    cas_failure_rate: float = 0.0,
    seed: int = 0,
) -> HCD:
    """Build the HCD of ``graph`` in parallel on ``pool``.

    Parameters
    ----------
    graph, coreness:
        The input graph and its (precomputed) core decomposition.
    pool:
        Simulated thread pool; all four steps of every round run as
        parallel regions on it.
    rank_result:
        Optionally a precomputed Algorithm 1 result (otherwise it is
        computed here, charged to the same pool).
    use_waitfree:
        Select the union-find engine: the simulated wait-free structure
        (default whenever ``pool.threads > 1``, as the paper prescribes)
        or the sequential pivot DSU.
    cas_failure_rate, seed:
        Failure-injection controls for the wait-free engine (the
        ``F`` term of the work bound); ignored by the sequential DSU.
    """
    coreness = np.asarray(coreness, dtype=np.int64)
    n = graph.num_vertices
    builder = HCDBuilder(n)
    if n == 0:
        return builder.build()
    if rank_result is None:
        rank_result = compute_vertex_rank(graph, coreness, pool)
    ranks = rank_result.rank
    shells = rank_result.shells
    kmax = rank_result.kmax
    indptr, indices = graph.indptr, graph.indices

    if use_waitfree is None:
        use_waitfree = pool.threads > 1
    if use_waitfree:
        uf: PivotUnionFind | SimulatedWaitFreeUnionFind = (
            SimulatedWaitFreeUnionFind(
                ranks, failure_rate=cas_failure_rate, seed=seed
            )
        )
    else:
        uf = PivotUnionFind(ranks)

    # tid(v) = -1 marks "no tree node yet" (the paper's infinity).
    # All cross-thread tid traffic goes through the atomic wrapper so
    # it is charged and visible to the race detector; per-item stores
    # use recorded plain writes (each shell vertex owns its own slot).
    tid = builder.tid  # shared alias; builder maintains it
    tid_arr = AtomicArray.from_array(builder.tid, name="tid")

    for k in range(kmax, -1, -1):
        shell = shells[k]
        if shell.size == 0:
            continue
        with pool.phase(f"phcd:level-{k}"):
            _phcd_level(
                pool, k, shell, builder, uf, tid, tid_arr,
                kpc_pivot=AtomicSet(name=f"kpc_pivot_k{k}"),
                coreness=coreness, indptr=indptr, indices=indices,
            )

    return builder.build()


def _phcd_level(
    pool, k, shell, builder, uf, tid, tid_arr, kpc_pivot,
    coreness, indptr, indices,
) -> None:
    """One round of Algorithm 2: the four parallel steps over a shell.

    Factored out of :func:`phcd_build_hcd` so each round runs under a
    SimProf ``phcd:level-k`` phase annotation (attribution only — the
    phase context manager never charges the clock).
    """
    shell_list = [int(v) for v in shell]

    # --- Step 1: pivots of components the shell will absorb -------
    def collect_child_pivots(v: int, ctx) -> None:
        ctx.charge(1)
        for u in indices[indptr[v] : indptr[v + 1]]:
            u = int(u)
            ctx.charge(SCAN_CHARGE)
            if coreness[u] > k:
                pvt = uf.get_pivot(u, ctx)
                kpc_pivot.add_if_absent(ctx, pvt)

    pool.parallel_for(
        shell_list,
        collect_child_pivots,
        label=f"phcd:step1_k{k}",
    )

    # --- Step 2: union shell into the growing graph ---------------
    def connect(v: int, ctx) -> None:
        ctx.charge(1)
        for u in indices[indptr[v] : indptr[v + 1]]:
            u = int(u)
            ctx.charge(SCAN_CHARGE)
            if coreness[u] >= k:
                uf.union(v, u, ctx)

    pool.parallel_for(
        shell_list,
        connect,
        label=f"phcd:step2_k{k}",
    )

    # --- Step 3: one tree node per distinct pivot ------------------
    def group_by_pivot(v: int, ctx) -> None:
        pvt = uf.get_pivot(v, ctx)
        node = int(tid_arr.load(ctx, pvt))
        if node < 0:
            # Two threads holding vertices of one component race to
            # create its node: allocate, then publish via CAS — the
            # loser re-reads the winner's node.  (On the sequential
            # substrate the CAS never loses; a real backend would
            # also retire the orphaned allocation.)
            fresh = builder.new_node(k)
            ctx.atomic(("hcd_nodes",), contended=False)
            if tid_arr.compare_and_swap(ctx, pvt, -1, fresh):
                node = fresh
            else:
                node = int(tid_arr.load(ctx, pvt))
        if v != pvt:
            # each shell vertex owns its own tid slot this round
            ctx.write(("tid", int(v)), 0.0)
            tid[v] = node
        # member append: relaxed fetch-add on the node's tail
        ctx.atomic(("node_members", node), contended=False)
        builder.add_member(node, v)

    pool.parallel_for(
        shell_list,
        group_by_pivot,
        label=f"phcd:step3_k{k}",
    )

    # --- Step 4: attach child tree nodes under the new nodes -------
    def attach_parent(old_pivot: int, ctx) -> None:
        pvt = uf.get_pivot(old_pivot, ctx)
        child = int(tid_arr.load(ctx, old_pivot))
        parent = int(tid_arr.load(ctx, pvt))
        # distinct old pivots map to distinct child nodes
        ctx.write(("hcd_parent", child), 0.0)
        builder.set_parent(child, parent)

    pool.parallel_for(
        list(kpc_pivot), attach_parent, label=f"phcd:step4_k{k}"
    )

