"""ParK — parallel k-core decomposition (Dasari, Ranjan & Zubair, 2014).

ParK is the predecessor of PKC: the same level-synchronous peeling, but
every sub-round *rescans the whole undecided vertex set* to build its
frontier and publishes the frontier through a single shared buffer,
paying more scans and more synchronization than PKC.  It is included as
the historical baseline PKC is compared against (paper Section VII) and
to let the component-speedup experiment (Figure 10) show CD as the
least scalable stage.

Work is ``O(n * kmax + m)`` like PKC, with a larger constant.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.parallel.atomics import AtomicArray, AtomicList
from repro.parallel.scheduler import SimulatedPool

__all__ = ["park_core_decomposition"]


def park_core_decomposition(graph: Graph, pool: SimulatedPool) -> np.ndarray:
    """Coreness of every vertex, via ParK's scan-heavy peeling."""
    n = graph.num_vertices
    coreness = np.zeros(n, dtype=np.int64)
    if n == 0:
        return coreness
    indptr, indices = graph.indptr, graph.indices
    degree = AtomicArray(n, dtype=np.int64, name="park_deg")
    degree.data[:] = graph.degrees()
    settled = np.zeros(n, dtype=bool)
    remaining = n
    k = 0
    while remaining > 0:
        progressed = True
        while progressed:
            # Whole-set rescan each sub-round (ParK's extra cost vs PKC).
            shared_frontier = AtomicList(name=f"park_frontier_k{k}")

            def scan(v: int, ctx) -> None:
                ctx.charge(1)
                if not settled[v] and degree.load(ctx, v) <= k:
                    shared_frontier.append(ctx, v)

            pool.parallel_for(range(n), scan, label=f"park:scan_k{k}")
            frontier = shared_frontier.snapshot()
            progressed = bool(frontier)
            if not progressed:
                break
            for v in frontier:
                settled[v] = True

            def process(v: int, ctx) -> None:
                # each frontier vertex owns its coreness slot
                ctx.write(("park_core", int(v)))
                coreness[v] = k
                for u in indices[indptr[v] : indptr[v + 1]]:
                    u = int(u)
                    ctx.charge(1)
                    if not settled[u]:
                        degree.add(ctx, u, -1)

            pool.parallel_for(frontier, process, label=f"park:peel_k{k}")
            remaining -= len(frontier)
        k += 1
    return coreness
