"""Parallel label-propagation graph partitioner (Spinner-style).

The divide-and-conquer feasibility study (paper Section V-B) needs a
parallel partitioner to contrast with PHCD: the paper cites Spinner
taking ~100s on 40 cores where PHCD takes ~2.6s.  This module provides
a simple Spinner-like partitioner — balanced seed assignment followed
by iterative majority-label adoption with capacity penalties — whose
simulated cost is reported by ``benchmarks/bench_feasibility_dnc.py``.
It is deliberately iteration-heavy (like the real systems) and is not
used by any correctness-critical path.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool

__all__ = ["label_propagation_partition"]


def label_propagation_partition(
    graph: Graph,
    num_parts: int,
    pool: SimulatedPool,
    iterations: int = 10,
    balance_slack: float = 1.10,
) -> np.ndarray:
    """Partition vertices into ``num_parts`` labels via label propagation.

    Each iteration every vertex adopts the label most common among its
    neighbors, unless the target part is over ``balance_slack`` times
    the ideal size.  Returns the final label array.
    """
    n = graph.num_vertices
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    labels = (np.arange(n, dtype=np.int64) * num_parts) // max(n, 1)
    if n == 0 or num_parts == 1:
        return labels
    capacity = int(balance_slack * n / num_parts) + 1
    indptr, indices = graph.indptr, graph.indices
    sizes = np.bincount(labels, minlength=num_parts)

    for it in range(iterations):
        new_labels = labels.copy()

        def relabel(v: int, ctx) -> None:
            ctx.charge(1)
            votes: dict[int, int] = {}
            for u in indices[indptr[v] : indptr[v + 1]]:
                ctx.charge(1)
                lab = int(labels[u])
                votes[lab] = votes.get(lab, 0) + 1
            if not votes:
                return
            # deterministic argmax: highest count, then lowest label
            best = min(votes, key=lambda lab: (-votes[lab], lab))
            if best != labels[v] and sizes[best] < capacity:
                ctx.atomic(("part_sizes", best))
                ctx.write(("part_newlab", int(v)), 0.0)
                new_labels[v] = best

        pool.parallel_for(range(n), relabel, label=f"partition:iter{it}")
        moved = new_labels != labels
        # apply moves and rebalance bookkeeping (serial bookkeeping pass)
        with pool.serial_region("partition:apply") as ctx:
            ctx.charge(int(np.count_nonzero(moved)) + num_parts)
        labels = new_labels
        sizes = np.bincount(labels, minlength=num_parts)
        if not bool(moved.any()):
            break
    return labels
