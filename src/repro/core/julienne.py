"""Bucketing-based parallel core decomposition (Julienne / GBBS style).

The paper's experiments take the faster of PKC and GBBS [23] as the
parallel core-decomposition input stage.  GBBS implements peeling on
Julienne's *bucket structure* [22]: vertices live in buckets keyed by
their current degree, the algorithm repeatedly extracts the minimum
non-empty bucket as a frontier, settles it, and moves decremented
neighbors between buckets — never rescanning the undecided set, which
is what makes it work-efficient (O(m + n) expected work) where
PKC/ParK pay O(n * kmax + m).

The bucket moves are charged as bucket-insert operations; stale
entries are skipped at extraction (lazy deletion, as in Julienne).
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.parallel.atomics import AtomicArray
from repro.parallel.scheduler import SimulatedPool

__all__ = ["julienne_core_decomposition"]


def julienne_core_decomposition(graph: Graph, pool: SimulatedPool) -> np.ndarray:
    """Coreness of every vertex via bucketed parallel peeling."""
    n = graph.num_vertices
    coreness = np.zeros(n, dtype=np.int64)
    if n == 0:
        return coreness
    indptr, indices = graph.indptr, graph.indices
    degree = AtomicArray(n, dtype=np.int64, name="jln_deg")
    degree.data[:] = graph.degrees()
    settled = np.zeros(n, dtype=bool)

    max_deg = int(degree.data.max())
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[int(degree.data[v])].append(v)
    with pool.serial_region("julienne:init") as ctx:
        ctx.charge(n)

    remaining = n
    k = 0
    while remaining > 0:
        # advance to the minimum non-empty bucket
        while k <= max_deg and not buckets[k]:
            k += 1
        # extract the frontier: live entries at exactly level k, plus
        # any vertex whose degree dropped to or below k (clamped)
        frontier: list[int] = []
        bucket = buckets[k]
        buckets[k] = []
        for v in bucket:
            # claim at extraction: a vertex may have several (stale)
            # entries across buckets, but is settled exactly once
            if not settled[v] and degree.data[v] <= k:
                settled[v] = True
                frontier.append(v)
        with pool.serial_region(f"julienne:extract_k{k}") as ctx:
            ctx.charge(len(bucket) + 1)
        if not frontier:
            continue
        next_moves: list[list[tuple[int, int]]] = [
            [] for _ in range(pool.threads)
        ]

        def settle(v: int, ctx) -> None:
            # each frontier vertex owns its coreness slot
            ctx.write(("jln_core", int(v)))
            coreness[v] = k
            for u in indices[indptr[v] : indptr[v + 1]]:
                u = int(u)
                ctx.charge(1)
                if settled[u]:
                    continue
                # bucket target comes from the fetch-add result — a raw
                # re-read would race with concurrent decrements
                old = degree.add(ctx, u, -1)
                new_deg = max(int(old) - 1, k)
                # bucket move: charged as one bucket insert
                ctx.charge(1)
                next_moves[ctx.thread_id].append((u, new_deg))

        pool.parallel_for(frontier, settle, label=f"julienne:settle_k{k}")
        remaining -= len(frontier)
        # apply bucket moves (lazy: old entries stay and are skipped)
        for part in next_moves:
            for u, new_deg in part:
                if not settled[u]:
                    buckets[min(new_deg, max_deg)].append(u)
    return coreness
