"""Divide-and-conquer HCD construction (paper Section III-E).

The five-step paradigm the paper evaluates — and finds infeasible:

1. core decomposition (given, as for LCPS/PHCD);
2. partition G into ``pmax`` disjoint parts;
3. run LCPS on each partition's induced subgraph with *global*
   coreness values, producing partial tree nodes;
4. merge partial tree nodes across partitions via local k-core search;
5. confirm parent-child relations, again via local k-core search.

Steps 4-5 reduce to the RC construction of
:mod:`repro.core.local_search`, so this builder's cost is
``partition + sum(per-part LCPS) + RC`` — dominated by RC exactly as
the paper argues.  The output HCD is correct (it is the RC-merged
hierarchy), so the test suite can verify it against LCPS/PHCD, while
the benchmark exposes its cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hcd import HCD
from repro.core.lcps import lcps_build_hcd
from repro.core.local_search import rc_build_hcd
from repro.core.partition import label_propagation_partition
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool

__all__ = ["DncResult", "dnc_build_hcd"]


@dataclass
class DncResult:
    """Output of the divide-and-conquer builder with per-phase clocks."""

    hcd: HCD
    partition_time: float
    local_lcps_time: float
    merge_time: float

    @property
    def total_time(self) -> float:
        """Total simulated construction time."""
        return self.partition_time + self.local_lcps_time + self.merge_time


def dnc_build_hcd(
    graph: Graph,
    coreness: np.ndarray,
    pool: SimulatedPool,
    num_parts: int | None = None,
    partition_iterations: int = 5,
) -> DncResult:
    """Run the divide-and-conquer paradigm end to end on ``pool``.

    ``num_parts`` defaults to the pool's thread count.  Partial LCPS
    runs execute per partition inside one parallel region (each virtual
    thread builds one partition's partial hierarchy); the merge phase
    is the RC construction over the whole graph.
    """
    coreness = np.asarray(coreness, dtype=np.int64)
    parts = num_parts or pool.threads

    # Step 2: partition.
    mark = pool.mark()
    labels = label_propagation_partition(
        graph, parts, pool, iterations=partition_iterations
    )
    partition_time = pool.elapsed_since(mark)

    # Step 3: LCPS per partition on induced subgraphs (global coreness).
    mark = pool.mark()
    part_vertices = [np.flatnonzero(labels == p) for p in range(parts)]

    def run_partial(p: int, ctx) -> int:
        verts = part_vertices[p]
        if verts.size == 0:
            return 0
        sub, originals = graph.induced_subgraph(verts)
        # Build the partial hierarchy with the *global* coreness values
        # restricted to the partition (capped by local degrees so the
        # bucket queue stays well-formed).
        local_coreness = np.minimum(
            coreness[originals], sub.degrees().astype(np.int64)
        )
        partial = lcps_build_hcd(sub, local_coreness)
        ctx.charge(2 * (sub.num_vertices + sub.num_edges))
        return partial.num_nodes

    partial_sizes = pool.parallel_for(
        list(range(parts)), run_partial, label="dnc:partial_lcps"
    )
    local_lcps_time = pool.elapsed_since(mark)

    # Steps 4-5: merge + parent confirmation via local k-core searches.
    mark = pool.mark()
    merged = rc_build_hcd(graph, coreness, pool)
    merge_time = pool.elapsed_since(mark)

    del partial_sizes  # partial node counts only matter for their cost
    return DncResult(
        hcd=merged,
        partition_time=partition_time,
        local_lcps_time=local_lcps_time,
        merge_time=merge_time,
    )
