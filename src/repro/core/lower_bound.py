"""LB — the union-find lower bound of Table III.

Any union-find-based HCD construction must at least connect every
adjacent vertex pair; ``LB`` performs exactly those unions and nothing
else.  The paper reports PHCD's runtime relative to this lower bound
(~0.3-0.8x of PHCD's speed) to show PHCD is near-optimal within its
paradigm.  The same union-find engine as PHCD is used so the two
clocks are comparable.
"""

from __future__ import annotations

import numpy as np

from repro.core.phcd import SCAN_CHARGE
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool
from repro.unionfind.pivot import PivotUnionFind
from repro.unionfind.waitfree import SimulatedWaitFreeUnionFind

__all__ = ["lower_bound_cost"]


def lower_bound_cost(graph: Graph, pool: SimulatedPool) -> float:
    """Simulated time of unioning every adjacent pair on ``pool``.

    Returns the elapsed simulated time (the pool clock also advances).
    """
    n = graph.num_vertices
    ranks = np.arange(n, dtype=np.int64)
    if pool.threads > 1:
        uf: PivotUnionFind | SimulatedWaitFreeUnionFind = (
            SimulatedWaitFreeUnionFind(ranks)
        )
    else:
        uf = PivotUnionFind(ranks)
    indptr, indices = graph.indptr, graph.indices
    start = pool.mark()

    def connect(v: int, ctx) -> None:
        ctx.charge(1)
        for u in indices[indptr[v] : indptr[v + 1]]:
            u = int(u)
            ctx.charge(SCAN_CHARGE)
            if u > v:
                uf.union(v, u, ctx)

    pool.parallel_for(
        range(n), connect, label="lower_bound", chunking="dynamic", grain=16
    )
    return pool.elapsed_since(start)
