"""MPM — distributed core decomposition (Montresor, Pellegrini, Miorandi).

The related-work baseline [21]: every vertex repeatedly recomputes its
coreness estimate as the *h-index* of its neighbors' current estimates
(the largest ``h`` such that at least ``h`` neighbors estimate >= h),
starting from its degree.  Estimates only decrease and converge to the
true coreness in ``it_MPM < kmax << n`` rounds; total work is
``O(it_MPM * m)``.

Each round is one parallel region over the active vertices (those with
a changed neighbor), simulating the message-passing execution; the
number of rounds is reported for the convergence claim.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool

__all__ = ["mpm_core_decomposition"]


def _h_index(values: list[int], cap: int) -> int:
    """Largest h <= cap with at least h entries >= h."""
    counts = [0] * (cap + 1)
    for value in values:
        counts[min(value, cap)] += 1
    total = 0
    for h in range(cap, -1, -1):
        total += counts[h]
        if total >= h:
            return h
    return 0


def mpm_core_decomposition(
    graph: Graph,
    pool: SimulatedPool,
) -> tuple[np.ndarray, int]:
    """Coreness via h-index fixpoint iteration; returns (coreness, rounds)."""
    n = graph.num_vertices
    estimate = graph.degrees().astype(np.int64).copy()
    if n == 0:
        return estimate, 0
    indptr, indices = graph.indptr, graph.indices
    active = np.ones(n, dtype=bool)
    rounds = 0
    while bool(active.any()):
        rounds += 1
        frontier = [int(v) for v in np.flatnonzero(active)]
        new_vals = estimate.copy()

        def update(v: int, ctx) -> None:
            # each frontier vertex owns its new_vals slot; estimate is
            # read-only inside the round (double-buffered)
            ctx.write(("mpm_new", int(v)))
            neigh_vals = []
            for u in indices[indptr[v] : indptr[v + 1]]:
                ctx.charge(1)
                neigh_vals.append(int(estimate[u]))
            new_vals[v] = _h_index(neigh_vals, int(estimate[v]))

        pool.parallel_for(frontier, update, label=f"mpm:round{rounds}")
        changed = np.flatnonzero(new_vals != estimate)
        estimate = new_vals
        active[:] = False
        for v in changed:
            # a changed estimate wakes the vertex's neighborhood
            active[indices[indptr[v] : indptr[v + 1]]] = True
            active[v] = True
    return estimate, rounds
