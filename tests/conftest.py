"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decomposition import core_decomposition
from repro.graph.generators import (
    complete_graph,
    core_chain,
    cycle_graph,
    erdos_renyi,
    powerlaw_cluster,
    star_graph,
)
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool


@pytest.fixture
def triangle():
    """K3 — the smallest 2-core."""
    return Graph.from_edges([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def paper_like_graph():
    """A graph shaped like the paper's Figure 1.

    One 4-core (K5), two 3-cores hanging inside the same 2-core, and a
    2-shell ring stitching them together.
    """
    edges = []
    # 4-core: K5 on 0-4
    for i in range(5):
        for j in range(i + 1, 5):
            edges.append((i, j))
    # 3-core #1: K4 on 5-8, attached to the K5 through a 1-bridge edge
    for i in range(5, 9):
        for j in range(i + 1, 9):
            edges.append((i, j))
    edges.append((5, 0))
    # 3-core #2: K4 on 9-12
    for i in range(9, 13):
        for j in range(i + 1, 13):
            edges.append((i, j))
    # 2-shell: a ring 13-17 touching both 3-cores
    ring = [13, 14, 15, 16, 17]
    for a, b in zip(ring, ring[1:] + ring[:1]):
        edges.append((a, b))
    edges.append((13, 5))
    edges.append((15, 9))
    return Graph.from_edges(edges)


@pytest.fixture
def chain_result():
    """A core-chain graph with known ground-truth HCD."""
    return core_chain([[5, 3, 2], [4, 2], [3, 2]])


@pytest.fixture(params=[0, 1, 2, 3])
def random_graph(request):
    """A family of small random graphs across generator types."""
    seed = request.param
    if seed % 2 == 0:
        return erdos_renyi(90, 0.06, seed=seed)
    return powerlaw_cluster(90, 3, 0.3, seed=seed)


@pytest.fixture(params=[1, 2, 4, 7])
def pool(request):
    """Pools at several thread counts."""
    return SimulatedPool(threads=request.param)


@pytest.fixture
def serial_pool():
    return SimulatedPool(threads=1)


def nx_coreness(graph: Graph) -> np.ndarray:
    """Reference coreness via networkx."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from(graph.edges())
    core = nx.core_number(g)
    return np.asarray([core[v] for v in range(graph.num_vertices)])


@pytest.fixture
def coreness_oracle():
    """Callable computing reference coreness with networkx."""
    return nx_coreness


# ----------------------------------------------------------------------
# pytest --sanitize / --memcheck: run the suite under the sanitizers
# ----------------------------------------------------------------------

def pytest_addoption(parser):
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help=(
            "attach the SimTSan race detector to every SimulatedPool "
            "and fail any test whose parallel regions contain "
            "unsynchronized conflicting accesses"
        ),
    )
    parser.addoption(
        "--memcheck",
        action="store_true",
        default=False,
        help=(
            "attach the SimCheck memory sanitizer to every "
            "SimulatedPool and fail any test whose recorded accesses "
            "hit poisoned (uninitialized) slots, go out of bounds, or "
            "overflow a checked cast; composes with --sanitize"
        ),
    )
    parser.addoption(
        "--prove",
        action="store_true",
        default=False,
        help=(
            "before running the suite, re-run the SimProve SAN5xx "
            "certification and fail fast on any provable OOB or any "
            "drift against the committed prove_manifest.json; "
            "composes with --sanitize/--memcheck"
        ),
    )
    parser.addoption(
        "--dist",
        action="store_true",
        default=False,
        help=(
            "before running the suite, re-run the SimDist SAN6xx "
            "distributed-protocol certification and fail fast on any "
            "SAN6xx violation or any drift against the committed "
            "dist_manifest.json; composes with --sanitize/--memcheck/"
            "--prove"
        ),
    )


def pytest_configure(config):
    if config.getoption("--prove"):
        from repro.sanitizer.prove import verify_manifest

        ok, message = verify_manifest()
        if not ok:
            pytest.exit(f"--prove gate failed: {message}", returncode=1)
    if config.getoption("--dist"):
        from repro.sanitizer.dist import verify_dist_manifest

        ok, message = verify_dist_manifest()
        if not ok:
            pytest.exit(f"--dist gate failed: {message}", returncode=1)
    sanitize = config.getoption("--sanitize")
    memcheck = config.getoption("--memcheck")
    if not (sanitize or memcheck):
        return
    observers = []
    if sanitize:
        from repro.sanitizer.detector import RaceDetector

        detector = RaceDetector()
        config._sanitize_detector = detector
        observers.append(detector)
    if memcheck:
        from repro.sanitizer.memcheck import MemChecker

        checker = MemChecker()
        checker.activate()  # san_empty registers suite allocations here
        config._memcheck_checker = checker
        observers.append(checker)
    if len(observers) == 1:
        observer = observers[0]
    else:
        from repro.parallel.observers import ObserverFanout

        observer = ObserverFanout(observers)
    original_init = SimulatedPool.__init__

    def instrumented_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        self.set_observer(observer)

    config._sanitize_original_init = original_init
    SimulatedPool.__init__ = instrumented_init


def pytest_unconfigure(config):
    original = getattr(config, "_sanitize_original_init", None)
    if original is not None:
        SimulatedPool.__init__ = original
    checker = getattr(config, "_memcheck_checker", None)
    if checker is not None:
        checker.deactivate()


@pytest.fixture(autouse=True)
def _sanitize_guard(request):
    """Fail any test that produced a new race or memcheck finding.

    Races/findings in regions labelled ``selftest:*`` are intentional
    (seeded sanitizer fixtures) and ignored.  NaN origins are tracking
    records, not failures.
    """
    detector = getattr(request.config, "_sanitize_detector", None)
    checker = getattr(request.config, "_memcheck_checker", None)
    if detector is None and checker is None:
        yield
        return
    from repro.sanitizer.selftest import SELFTEST_PREFIX

    races_before = len(detector.races) if detector else 0
    findings_before = len(checker.findings) if checker else 0
    yield
    problems: list[str] = []
    if detector is not None:
        problems += [
            f"  {race}"
            for race in detector.races[races_before:]
            if not race.region.startswith(SELFTEST_PREFIX)
        ]
    if checker is not None:
        problems += [
            f"  {finding}"
            for finding in checker.findings[findings_before:]
            if not finding.region.startswith(SELFTEST_PREFIX)
            and not finding.name.startswith("selftest")
        ]
    if problems:
        lines = "\n".join(problems)
        pytest.fail(
            f"sanitizer: {len(problems)} finding(s) in this test:\n{lines}",
            pytrace=False,
        )


__all__ = [
    "nx_coreness",
    "complete_graph",
    "cycle_graph",
    "star_graph",
    "core_decomposition",
]
