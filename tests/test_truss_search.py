"""Tests for best-truss search (the PBKS paradigm on edges)."""

import numpy as np
import pytest

from repro.graph.generators import complete_graph, powerlaw_cluster
from repro.graph.graph import Graph
from repro.graph.properties import triangle_count
from repro.parallel.scheduler import SimulatedPool
from repro.truss.decomposition import EdgeIndex, truss_decomposition
from repro.truss.hierarchy import truss_hierarchy
from repro.truss.search import TRUSS_METRICS, best_truss


@pytest.fixture
def setting():
    g = powerlaw_cluster(70, 3, 0.6, seed=4)
    index = EdgeIndex(g)
    trussness = truss_decomposition(g, index)
    hierarchy = truss_hierarchy(g, trussness, SimulatedPool(threads=2), index=index)
    return g, index, trussness, hierarchy


def community_subgraph(index, hierarchy, node):
    eids = hierarchy.reconstruct_truss(node)
    pairs = [tuple(int(x) for x in index.edges[e]) for e in eids]
    vs = sorted({x for pair in pairs for x in pair})
    remap = {v: i for i, v in enumerate(vs)}
    return Graph.from_edges(
        [(remap[a], remap[b]) for a, b in pairs], num_vertices=len(vs)
    )


class TestValuesOracle:
    def test_every_node_matches_direct_recount(self, setting):
        g, index, trussness, hierarchy = setting
        res = best_truss(g, hierarchy, trussness, SimulatedPool(threads=3))
        for node in range(hierarchy.num_nodes):
            sub = community_subgraph(index, hierarchy, node)
            m_, tri = res.values[node]
            assert m_ == sub.num_edges
            assert tri == triangle_count(sub)

    @pytest.mark.parametrize("threads", [1, 4, 8])
    def test_thread_invariance(self, setting, threads):
        g, _, trussness, hierarchy = setting
        base = best_truss(g, hierarchy, trussness, SimulatedPool(threads=1))
        other = best_truss(
            g, hierarchy, trussness, SimulatedPool(threads=threads)
        )
        assert np.allclose(base.scores, other.scores)
        assert base.best_node == other.best_node


class TestBestTruss:
    def test_best_is_argmax(self, setting):
        g, _, trussness, hierarchy = setting
        for metric in TRUSS_METRICS:
            res = best_truss(
                g, hierarchy, trussness, SimulatedPool(), metric=metric
            )
            assert res.best_score == pytest.approx(float(res.scores.max()))
            assert res.metric_name == metric

    def test_clique_wins_average_support(self):
        # sparse chain + K6: the K6's community has max average support
        edges = [(i, i + 1) for i in range(10)]
        k6 = [(u + 11, v + 11) for u, v in complete_graph(6).edges()]
        g = Graph.from_edges(edges + k6 + [(10, 11)])
        index = EdgeIndex(g)
        trussness = truss_decomposition(g, index)
        hierarchy = truss_hierarchy(g, trussness, SimulatedPool(), index=index)
        res = best_truss(g, hierarchy, trussness, SimulatedPool())
        assert res.best_k == 6
        assert set(res.best_vertices().tolist()) == set(range(11, 17))
        # K6 average support: each edge in 4 triangles
        assert res.best_score == pytest.approx(4.0)

    def test_unknown_metric(self, setting):
        g, _, trussness, hierarchy = setting
        with pytest.raises(KeyError):
            best_truss(g, hierarchy, trussness, SimulatedPool(), metric="nope")

    def test_empty_graph(self):
        g = Graph.empty(2)
        index = EdgeIndex(g)
        trussness = truss_decomposition(g, index)
        hierarchy = truss_hierarchy(g, trussness, SimulatedPool(), index=index)
        res = best_truss(g, hierarchy, trussness, SimulatedPool())
        assert res.best_node == -1
        assert res.best_edges().size == 0

    def test_triangle_density_metric(self):
        # a single triangle has density 1 over its 3 edges: C(3,2)=3 pairs
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        index = EdgeIndex(g)
        trussness = truss_decomposition(g, index)
        hierarchy = truss_hierarchy(g, trussness, SimulatedPool(), index=index)
        res = best_truss(
            g, hierarchy, trussness, SimulatedPool(), metric="triangle_density"
        )
        assert res.best_k == 3
        assert res.best_score == pytest.approx(1.0 / 3.0)
