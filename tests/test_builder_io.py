"""Tests for GraphBuilder and graph I/O."""

import numpy as np
import pytest

from repro.errors import GraphBuildError, GraphFormatError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.io import (
    load_npz,
    parse_edge_lines,
    read_edge_list,
    read_metis,
    save_npz,
    write_edge_list,
    write_metis,
)


class TestBuilder:
    def test_basic_build(self):
        g = GraphBuilder().add_edge(0, 1).add_edge(1, 2).build()
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_add_edges_bulk(self):
        g = GraphBuilder().add_edges([(0, 1), (1, 2), (2, 0)]).build()
        assert g.num_edges == 3

    def test_isolated_vertex(self):
        g = GraphBuilder().add_edge(0, 1).add_vertex(5).build()
        assert g.num_vertices == 6
        assert g.degree(5) == 0

    def test_num_recorded_edges(self):
        b = GraphBuilder().add_edge(0, 1).add_edge(0, 1)
        assert b.num_recorded_edges == 2  # pre-dedup count

    def test_relabel_strings(self):
        b = GraphBuilder(relabel=True)
        b.add_edge("alice", "bob").add_edge("bob", "carol")
        g = b.build()
        assert g.num_vertices == 3
        assert b.labels == ["alice", "bob", "carol"]
        assert b.label_to_id["carol"] == 2

    def test_relabel_sparse_ints(self):
        b = GraphBuilder(relabel=True)
        b.add_edge(1000, 2000)
        g = b.build()
        assert g.num_vertices == 2

    def test_build_consumes(self):
        b = GraphBuilder().add_edge(0, 1)
        b.build()
        with pytest.raises(GraphBuildError):
            b.build()
        with pytest.raises(GraphBuildError):
            b.add_edge(1, 2)

    def test_negative_id_rejected(self):
        with pytest.raises(GraphBuildError):
            GraphBuilder().add_edge(-1, 0)

    def test_build_with_explicit_n(self):
        g = GraphBuilder().add_edge(0, 1).build(num_vertices=10)
        assert g.num_vertices == 10


class TestEdgeList:
    def test_round_trip(self, tmp_path, paper_like_graph):
        path = tmp_path / "g.txt"
        write_edge_list(paper_like_graph, path)
        loaded = read_edge_list(path)
        assert loaded == paper_like_graph

    def test_comments_and_blanks(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n% other comment\n0 1\n1 2\n// c\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_extra_fields_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 3.5\n1 2 1.0\n")
        assert read_edge_list(path).num_edges == 2

    def test_relabel_mode(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("100 200\n200 300\n")
        g = read_edge_list(path, relabel=True)
        assert g.num_vertices == 3

    def test_malformed_line(self):
        with pytest.raises(GraphFormatError):
            list(parse_edge_lines(["0"]))

    def test_non_integer(self):
        with pytest.raises(GraphFormatError):
            list(parse_edge_lines(["a b"]))


class TestMetis:
    def test_round_trip(self, tmp_path, paper_like_graph):
        path = tmp_path / "g.metis"
        write_metis(paper_like_graph, path)
        assert read_metis(path) == paper_like_graph

    def test_header_vertex_mismatch(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("3 1\n2\n1\n")  # declares 3 vertices, lists 2
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_header_edge_mismatch(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_neighbor_out_of_range(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 1\n9\n1\n")
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("")
        with pytest.raises(GraphFormatError):
            read_metis(path)


class TestNpz:
    def test_round_trip(self, tmp_path, random_graph):
        path = tmp_path / "g.npz"
        save_npz(random_graph, path)
        assert load_npz(path) == random_graph

    def test_missing_arrays(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(path, foo=np.zeros(3))
        with pytest.raises(GraphFormatError):
            load_npz(path)

    def test_isolated_vertices_preserved(self, tmp_path):
        g = Graph.from_edges([(0, 1)], num_vertices=7)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert load_npz(path).num_vertices == 7
