"""Tests for the k-ECC extension (min cut, components, hierarchy)."""

import networkx as nx
import numpy as np
import pytest

from repro.ecc import (
    ecc_decomposition,
    k_edge_connected_components,
    stoer_wagner_min_cut,
)
from repro.graph.generators import complete_graph, cycle_graph, erdos_renyi
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool


def to_nx(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from(graph.edges())
    return g


def barbell(clique: int = 4) -> Graph:
    """Two cliques joined by a single bridge edge."""
    edges = list(complete_graph(clique).edges())
    edges += [(u + clique, v + clique) for u, v in complete_graph(clique).edges()]
    edges.append((0, clique))
    return Graph.from_edges(edges)


class TestStoerWagner:
    def test_bridge_graph(self):
        g = barbell()
        value, side = stoer_wagner_min_cut(g)
        assert value == 1
        assert sorted(side) in ([0, 1, 2, 3], [4, 5, 6, 7])

    def test_complete_graph(self):
        value, side = stoer_wagner_min_cut(complete_graph(5))
        assert value == 4
        assert len(side) in (1, 4)

    def test_cycle(self):
        value, _ = stoer_wagner_min_cut(cycle_graph(6))
        assert value == 2

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        g = erdos_renyi(25, 0.2, seed=seed)
        comps = list(nx.connected_components(to_nx(g)))
        big = max(comps, key=len)
        if len(big) < 2:
            pytest.skip("disconnected sample")
        value_nx, _ = nx.stoer_wagner(to_nx(g).subgraph(big))
        value, side = stoer_wagner_min_cut(g, np.asarray(sorted(big)))
        assert value == value_nx
        assert 0 < len(side) < len(big)

    def test_too_small(self, triangle):
        with pytest.raises(ValueError):
            stoer_wagner_min_cut(triangle, np.asarray([0]))


class TestKEcc:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_matches_networkx_subgraph_semantics(self, seed, k):
        g = erdos_renyi(25, 0.18, seed=seed)
        mine = {frozenset(c) for c in k_edge_connected_components(g, k)}
        theirs = {frozenset(c) for c in nx.k_edge_subgraphs(to_nx(g), k)}
        assert mine == theirs

    def test_barbell_levels(self):
        g = barbell(4)
        level1 = k_edge_connected_components(g, 1)
        assert level1 == [sorted(range(8))]
        level2 = sorted(k_edge_connected_components(g, 2))
        assert level2 == [[0, 1, 2, 3], [4, 5, 6, 7]]
        level3 = sorted(k_edge_connected_components(g, 3))
        assert level3 == [[0, 1, 2, 3], [4, 5, 6, 7]]
        level4 = k_edge_connected_components(g, 4)
        assert all(len(c) == 1 for c in level4)

    def test_each_component_is_k_connected(self):
        g = erdos_renyi(25, 0.25, seed=7)
        for k in (2, 3):
            for comp in k_edge_connected_components(g, k):
                if len(comp) < 2:
                    continue
                value, _ = stoer_wagner_min_cut(g, np.asarray(comp))
                assert value >= k

    def test_k_zero_is_whole_graph(self, triangle):
        assert k_edge_connected_components(triangle, 0) == [[0, 1, 2]]

    def test_empty_graph(self):
        assert k_edge_connected_components(Graph.empty(0), 2) == []


class TestHierarchy:
    def test_nesting(self):
        g = barbell(4)
        h = ecc_decomposition(g)
        values = sorted(v for v, _ in h.nodes)
        assert values == [1, 3, 3]  # whole graph at 1, two K4s at 3
        for idx, pa in enumerate(h.parents):
            if pa >= 0:
                assert h.nodes[pa][0] < h.nodes[idx][0]
                assert h.nodes[idx][1] < h.nodes[pa][1]

    def test_connectivity_values(self):
        g = barbell(4)
        h = ecc_decomposition(g)
        assert np.array_equal(h.connectivity, [3] * 8)

    def test_connectivity_of_isolated(self):
        g = Graph.from_edges([(0, 1)], num_vertices=3)
        h = ecc_decomposition(g)
        assert h.connectivity[2] == 0
        assert h.connectivity[0] == 1

    @pytest.mark.parametrize("seed", range(3))
    def test_components_at_matches_direct(self, seed):
        g = erdos_renyi(22, 0.2, seed=seed)
        h = ecc_decomposition(g)
        for k in range(1, 5):
            from_h = {frozenset(c) for c in h.components_at(k)}
            direct = {
                frozenset(c)
                for c in k_edge_connected_components(g, k)
                if len(c) > 1
            }
            assert from_h == direct

    def test_charges_pool(self):
        pool = SimulatedPool()
        ecc_decomposition(barbell(), pool)
        assert pool.clock > 0

    def test_connectivity_consistent_with_nodes(self):
        g = erdos_renyi(20, 0.25, seed=1)
        h = ecc_decomposition(g)
        for v in range(g.num_vertices):
            containing = [
                value for value, members in h.nodes if v in members
            ]
            expected = max(containing, default=0)
            assert h.connectivity[v] == expected
