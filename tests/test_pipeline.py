"""Tests for the high-level pipelines (decompose / search_best_core)."""

import numpy as np
import pytest

from repro.core.decomposition import core_decomposition
from repro.core.lcps import lcps_build_hcd
from repro.pipeline import decompose, search_best_core
from repro.search.bks import bks_search


class TestDecompose:
    def test_serial_stack(self, random_graph):
        deco = decompose(random_graph, threads=1)
        assert np.array_equal(deco.coreness, core_decomposition(random_graph))
        deco.hcd.validate(random_graph, deco.coreness)
        assert set(deco.phase_times) == {"core_decomposition", "hcd"}
        assert deco.total_time > 0

    @pytest.mark.parametrize("threads", [2, 6])
    def test_parallel_stack_equivalent(self, random_graph, threads):
        serial = decompose(random_graph, threads=1)
        parallel = decompose(random_graph, threads=threads)
        assert np.array_equal(serial.coreness, parallel.coreness)
        assert serial.hcd.equivalent_to(parallel.hcd)

    def test_forced_parallel_on_one_thread(self, random_graph):
        deco = decompose(random_graph, threads=1, parallel=True)
        deco.hcd.validate(random_graph, deco.coreness)

    def test_phase_times_positive(self, random_graph):
        deco = decompose(random_graph, threads=4)
        assert all(t > 0 for t in deco.phase_times.values())


class TestSearchBestCore:
    @pytest.mark.parametrize("metric", ["average_degree", "clustering_coefficient"])
    def test_matches_direct_bks(self, random_graph, metric):
        result, deco = search_best_core(random_graph, metric, threads=1)
        coreness = core_decomposition(random_graph)
        hcd = lcps_build_hcd(random_graph, coreness)
        direct = bks_search(random_graph, coreness, hcd, metric)
        assert result.best_score == pytest.approx(direct.best_score)

    def test_parallel_equals_serial(self, random_graph):
        serial, _ = search_best_core(random_graph, "conductance", threads=1)
        parallel, _ = search_best_core(random_graph, "conductance", threads=8)
        assert sorted(serial.scores.tolist()) == pytest.approx(
            sorted(parallel.scores.tolist())
        )
        assert serial.best_score == pytest.approx(parallel.best_score)

    def test_parallel_phase_times(self, random_graph):
        _, deco = search_best_core(random_graph, "average_degree", threads=4)
        assert "preprocessing" in deco.phase_times
        assert "search" in deco.phase_times

    def test_parallel_end_to_end_faster(self):
        from repro.graph.generators import powerlaw_cluster

        g = powerlaw_cluster(400, 5, 0.3, seed=0)
        _, d1 = search_best_core(g, "clustering_coefficient", threads=1)
        _, d40 = search_best_core(
            g, "clustering_coefficient", threads=40, parallel=True
        )
        assert d40.pool.clock < d1.pool.clock


class TestDecompositionReuse:
    """search_best_core(deco=...) reuses one decomposition per snapshot."""

    def test_reuse_matches_fresh_run(self, random_graph):
        deco = decompose(random_graph, threads=4, parallel=True)
        reused, deco_back = search_best_core(
            random_graph, "average_degree", deco=deco, parallel=True
        )
        fresh, _ = search_best_core(
            random_graph, "average_degree", threads=4, parallel=True
        )
        assert deco_back is deco
        assert reused.best_k == fresh.best_k
        assert reused.best_score == pytest.approx(fresh.best_score)

    def test_reuse_skips_decomposition_work(self, random_graph):
        deco = decompose(random_graph, threads=4, parallel=True)
        mark = deco.pool.mark()
        before = len(deco.pool.regions)
        search_best_core(
            random_graph, "average_degree", deco=deco, parallel=True
        )
        labels = {r.label for r in deco.pool.regions[before:]}
        # only preprocessing + search ran — no core-decomposition or
        # HCD-construction regions were re-executed
        assert not any(
            label.startswith(("pkc", "phcd", "rank")) for label in labels
        ), labels
        assert deco.pool.elapsed_since(mark) > 0

    def test_reuse_rejects_foreign_graph(self, random_graph, triangle):
        deco = decompose(random_graph, threads=2)
        with pytest.raises(ValueError, match="different graph"):
            search_best_core(triangle, "average_degree", deco=deco)
