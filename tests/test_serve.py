"""Tests for the HCDServe serving layer (snapshot store -> service loop)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.decomposition import core_decomposition
from repro.dynamic import DynamicGraph
from repro.errors import SnapshotError, WorkloadError
from repro.graph.generators import powerlaw_cluster
from repro.parallel.scheduler import SimulatedPool
from repro.search.best_k import find_best_k
from repro.search.influential import InfluentialCommunityIndex
from repro.search.pbks import pbks_search
from repro.serve import (
    DynamicServingFeed,
    HCDService,
    QueryPlanner,
    ResultCache,
    ServiceConfig,
    Snapshot,
    SnapshotCatalog,
    SnapshotExecutor,
    build_snapshot,
    load_trace,
    normalize_request,
    save_trace,
    synthetic_trace,
)
from repro.serve.snapshot import ARRAYS_FILE, MANIFEST_FILE


def _graph():
    return powerlaw_cluster(90, 3, 0.35, seed=13)


@pytest.fixture(scope="module")
def snapshot():
    return build_snapshot(_graph(), threads=4, name="base")


@pytest.fixture
def catalog(tmp_path, snapshot):
    cat = SnapshotCatalog(tmp_path / "catalog")
    cat.publish(snapshot, name="base")
    return cat


# ----------------------------------------------------------------------
# snapshot round-trip and corruption (satellite: typed SnapshotError)
# ----------------------------------------------------------------------


class TestSnapshotRoundTrip:
    def test_save_load_identical(self, tmp_path, snapshot):
        snapshot.save(tmp_path / "bundle")
        loaded = Snapshot.load(tmp_path / "bundle")
        for key, arr in snapshot.arrays().items():
            assert np.array_equal(arr, loaded.arrays()[key]), key
        assert loaded.name == snapshot.name
        assert loaded.build_info == snapshot.build_info
        # derived shells round-trip through coreness
        for ours, theirs in zip(
            snapshot.rank_result.shells, loaded.rank_result.shells
        ):
            assert np.array_equal(np.sort(ours), np.sort(theirs))

    def test_loaded_snapshot_serves_same_answers(self, tmp_path, snapshot):
        snapshot.save(tmp_path / "bundle")
        loaded = Snapshot.load(tmp_path / "bundle")
        a = SnapshotExecutor(snapshot, SimulatedPool(threads=2))
        b = SnapshotExecutor(loaded, SimulatedPool(threads=2))
        query = normalize_request({"kind": "pbks", "metric": "average_degree"})
        ra, rb = a.run_query(query), b.run_query(query)
        assert (ra.best_k, ra.best_score, ra.size) == (
            rb.best_k,
            rb.best_score,
            rb.size,
        )


class TestSnapshotCorruption:
    @pytest.fixture
    def bundle(self, tmp_path, snapshot):
        path = tmp_path / "bundle"
        snapshot.save(path)
        return path

    def _edit_manifest(self, bundle, fn):
        manifest = json.loads((bundle / MANIFEST_FILE).read_text())
        fn(manifest)
        (bundle / MANIFEST_FILE).write_text(json.dumps(manifest))

    def _tamper_array(self, bundle, key, new_arr):
        """Replace one array and refresh its manifest entry (checksum
        passes; the structural validator must catch it)."""
        from repro.serve.snapshot import _sha256

        with np.load(bundle / ARRAYS_FILE) as data:
            raw = {k: data[k] for k in data.files}
        raw[key] = new_arr
        np.savez_compressed(bundle / ARRAYS_FILE, **raw)
        self._edit_manifest(
            bundle,
            lambda m: m["arrays"].__setitem__(
                key,
                {
                    "sha256": _sha256(new_arr),
                    "dtype": str(new_arr.dtype),
                    "shape": list(new_arr.shape),
                },
            ),
        )

    def test_missing_manifest(self, bundle):
        (bundle / MANIFEST_FILE).unlink()
        with pytest.raises(SnapshotError, match="manifest.json"):
            Snapshot.load(bundle)

    def test_manifest_not_json(self, bundle):
        (bundle / MANIFEST_FILE).write_text("{not json")
        with pytest.raises(SnapshotError, match="manifest.json"):
            Snapshot.load(bundle)

    def test_format_version_skew(self, bundle):
        self._edit_manifest(
            bundle, lambda m: m.__setitem__("format", "hcdserve/v0")
        )
        with pytest.raises(SnapshotError, match="'format'"):
            Snapshot.load(bundle)

    def test_missing_manifest_field(self, bundle):
        self._edit_manifest(bundle, lambda m: m.pop("version"))
        with pytest.raises(SnapshotError, match="'version'"):
            Snapshot.load(bundle)

    def test_truncated_npz(self, bundle):
        blob = (bundle / ARRAYS_FILE).read_bytes()
        (bundle / ARRAYS_FILE).write_bytes(blob[: len(blob) // 2])
        with pytest.raises(SnapshotError, match="truncated or unreadable"):
            Snapshot.load(bundle)

    def test_missing_npz(self, bundle):
        (bundle / ARRAYS_FILE).unlink()
        with pytest.raises(SnapshotError, match="arrays.npz"):
            Snapshot.load(bundle)

    def test_checksum_mismatch_names_array(self, bundle):
        self._edit_manifest(
            bundle,
            lambda m: m["arrays"]["coreness"].__setitem__("sha256", "0" * 64),
        )
        with pytest.raises(SnapshotError, match="'coreness'.*checksum"):
            Snapshot.load(bundle)

    def test_dtype_mismatch_names_array(self, bundle):
        self._edit_manifest(
            bundle,
            lambda m: m["arrays"]["rank"].__setitem__("dtype", "float32"),
        )
        with pytest.raises(SnapshotError, match="'rank'.*dtype"):
            Snapshot.load(bundle)

    def test_shape_mismatch_names_array(self, bundle):
        self._edit_manifest(
            bundle,
            lambda m: m["arrays"]["indices"].__setitem__("shape", [1]),
        )
        with pytest.raises(SnapshotError, match="'indices'.*shape"):
            Snapshot.load(bundle)

    def test_missing_array_entry(self, bundle):
        with np.load(bundle / ARRAYS_FILE) as data:
            raw = {k: data[k] for k in data.files}
        raw.pop("vsort")
        np.savez_compressed(bundle / ARRAYS_FILE, **raw)
        with pytest.raises(SnapshotError, match="'vsort'"):
            Snapshot.load(bundle)

    def test_invalid_csr_is_snapshot_error(self, bundle, snapshot):
        bad = snapshot.graph.indices.copy()
        if bad.size:
            bad[0] = 10**6  # out-of-range neighbor
        self._tamper_array(bundle, "indices", bad)
        with pytest.raises(SnapshotError, match="CSR"):
            Snapshot.load(bundle)

    def test_negative_coreness(self, bundle, snapshot):
        bad = snapshot.coreness.copy()
        bad[0] = -3
        self._tamper_array(bundle, "coreness", bad)
        with pytest.raises(SnapshotError, match="'coreness'"):
            Snapshot.load(bundle)

    def test_invalid_hcd_parent(self, bundle, snapshot):
        bad = snapshot.hcd.parent.copy()
        bad[0] = 10**6
        self._tamper_array(bundle, "parent", bad)
        with pytest.raises(SnapshotError, match="HCD"):
            Snapshot.load(bundle)

    def test_counts_exceeding_degree(self, bundle, snapshot):
        bad = np.asarray(snapshot.counts.gt, dtype=np.int64).copy()
        bad[0] = 10**6
        self._tamper_array(bundle, "counts_gt", bad)
        with pytest.raises(SnapshotError, match="degree"):
            Snapshot.load(bundle)


# ----------------------------------------------------------------------
# catalog
# ----------------------------------------------------------------------


class TestCatalog:
    def test_publish_assigns_increasing_versions(self, tmp_path, snapshot):
        cat = SnapshotCatalog(tmp_path)
        assert cat.publish(snapshot, name="s") == 1
        assert cat.publish(snapshot, name="s") == 2
        assert cat.versions("s") == [1, 2]
        assert cat.latest_version("s") == 2

    def test_open_latest_and_specific(self, catalog):
        latest = catalog.open("base")
        assert latest.version == 1
        assert catalog.open("base", version=1).version == 1

    def test_open_unknown_name_lists_known(self, catalog):
        with pytest.raises(SnapshotError, match="base"):
            catalog.open("nope")

    def test_open_unknown_version(self, catalog):
        with pytest.raises(SnapshotError, match="no version"):
            catalog.open("base", version=99)

    def test_staleness(self, catalog, snapshot):
        assert not catalog.is_stale("base", 1)
        catalog.publish(snapshot, name="base")
        assert catalog.is_stale("base", 1)
        assert not catalog.is_stale("base", 2)

    def test_invalid_name_rejected(self, tmp_path, snapshot):
        cat = SnapshotCatalog(tmp_path)
        with pytest.raises(SnapshotError, match="invalid snapshot name"):
            cat.publish(snapshot, name="../evil")

    def test_stage_dirs_never_visible(self, tmp_path, snapshot):
        cat = SnapshotCatalog(tmp_path)
        cat.publish(snapshot, name="s")
        entries = [p.name for p in (tmp_path / "s").iterdir()]
        assert entries == ["v00000001"]

    def test_identity_mismatch_detected(self, tmp_path, snapshot):
        cat = SnapshotCatalog(tmp_path)
        cat.publish(snapshot, name="s")
        manifest_path = cat.path("s", 1) / MANIFEST_FILE
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 7
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="identity"):
            cat.open("s")


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------


class TestResultCache:
    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.hits == 3
        assert stats.misses == 1

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.stats().misses == 1

    def test_hit_rate(self):
        cache = ResultCache(capacity=4)
        assert cache.stats().hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.stats().hit_rate == 0.5


# ----------------------------------------------------------------------
# planner
# ----------------------------------------------------------------------


class TestPlanner:
    def test_densest_normalizes_to_pbks(self):
        a = normalize_request({"kind": "densest"})
        b = normalize_request({"kind": "pbks", "metric": "average_degree"})
        assert a.fingerprint == b.fingerprint

    @pytest.mark.parametrize(
        "request_, field",
        [
            ({"kind": "nope"}, "kind"),
            ({}, "kind"),
            ({"kind": "pbks", "metric": "nope"}, "metric"),
            ({"kind": "influential", "k": 0}, "'k'"),
            ({"kind": "influential", "r": -1}, "'r'"),
            ({"kind": "influential", "weights": "pagerank"}, "weights"),
            ({"kind": "densest", "metric": "internal_density"}, "metric"),
        ],
    )
    def test_malformed_requests_name_the_field(self, request_, field):
        with pytest.raises(WorkloadError, match=field):
            normalize_request(request_)

    def test_non_mapping_rejected(self):
        with pytest.raises(WorkloadError, match="object"):
            normalize_request("pbks")

    def test_plan_coalesces_identical_queries(self):
        q = normalize_request({"kind": "pbks", "metric": "average_degree"})
        plan = QueryPlanner().plan([(0, q), (1, q), (2, q)])
        assert plan.distinct == 1
        assert plan.coalesced == 2
        assert plan.requesters[q.fingerprint] == [0, 1, 2]

    def test_plan_groups_by_shared_pass(self):
        reqs = [
            {"kind": "pbks", "metric": "average_degree"},
            {"kind": "pbks", "metric": "clustering_coefficient"},
            {"kind": "best_k", "metric": "average_degree"},
            {"kind": "influential", "k": 2, "r": 1, "weights": "degree"},
            {"kind": "influential", "k": 3, "r": 2, "weights": "degree"},
        ]
        plan = QueryPlanner().plan(
            [(i, normalize_request(r)) for i, r in enumerate(reqs)]
        )
        assert plan.node_metrics == [
            "average_degree",
            "clustering_coefficient",
        ]
        assert plan.node_need_b  # clustering_coefficient is type B
        assert plan.level_metrics == ["average_degree"]
        assert not plan.level_need_b
        assert plan.influential == {"degree": [(2, 1), (3, 2)]}


# ----------------------------------------------------------------------
# executor: batched answers match the direct search engines
# ----------------------------------------------------------------------


class TestExecutor:
    @pytest.mark.parametrize(
        "metric", ["average_degree", "clustering_coefficient"]
    )
    def test_pbks_matches_direct_search(self, snapshot, metric):
        executor = SnapshotExecutor(snapshot, SimulatedPool(threads=4))
        got = executor.run_query(
            normalize_request({"kind": "pbks", "metric": metric})
        )
        want = pbks_search(
            snapshot.graph,
            snapshot.coreness,
            snapshot.hcd,
            metric,
            SimulatedPool(threads=4),
            counts=snapshot.counts,
            rank_result=snapshot.rank_result,
        )
        assert got.best_k == want.best_k
        assert got.best_score == want.best_score
        assert got.detail == (want.best_node,)

    @pytest.mark.parametrize(
        "metric", ["average_degree", "clustering_coefficient"]
    )
    def test_best_k_matches_direct(self, snapshot, metric):
        executor = SnapshotExecutor(snapshot, SimulatedPool(threads=4))
        got = executor.run_query(
            normalize_request({"kind": "best_k", "metric": metric})
        )
        want = find_best_k(
            snapshot.graph,
            snapshot.coreness,
            metric,
            SimulatedPool(threads=4),
            counts=snapshot.counts,
            rank_result=snapshot.rank_result,
        )
        assert got.best_k == want.best_k
        assert got.best_score == want.best_score

    def test_influential_matches_direct(self, snapshot):
        executor = SnapshotExecutor(snapshot, SimulatedPool(threads=4))
        got = executor.run_query(
            normalize_request(
                {"kind": "influential", "k": 2, "r": 3, "weights": "degree"}
            )
        )
        index = InfluentialCommunityIndex(
            snapshot.hcd,
            np.asarray(snapshot.graph.degrees(), dtype=np.float64),
            SimulatedPool(threads=4),
        )
        want = index.top_r(2, 3)
        assert got.detail == tuple(
            (c.node, float(c.influence), int(c.size)) for c in want
        )

    def test_share_passes_off_same_answers_more_work(self, snapshot):
        reqs = [
            (0, normalize_request({"kind": "pbks", "metric": "average_degree"})),
            (1, normalize_request({"kind": "pbks", "metric": "internal_density"})),
            (2, normalize_request({"kind": "best_k", "metric": "average_degree"})),
        ]
        plan = QueryPlanner().plan(reqs)
        shared_pool = SimulatedPool(threads=4)
        baseline_pool = SimulatedPool(threads=4)
        shared = SnapshotExecutor(snapshot, shared_pool, share_passes=True)
        baseline = SnapshotExecutor(
            snapshot, baseline_pool, share_passes=False
        )
        r_shared = shared.execute(plan)
        r_base = baseline.execute(plan)
        assert r_shared == r_base
        assert shared_pool.clock < baseline_pool.clock

    def test_type_a_reuses_type_b_matrix(self, snapshot):
        pool = SimulatedPool(threads=2)
        executor = SnapshotExecutor(snapshot, pool)
        executor.run_query(
            normalize_request(
                {"kind": "pbks", "metric": "clustering_coefficient"}
            )
        )
        mark = pool.mark()
        before = len(pool.regions)
        executor.run_query(
            normalize_request({"kind": "pbks", "metric": "average_degree"})
        )
        # only the score fold ran — no new contribution/accumulate pass
        new_labels = [r.label for r in pool.regions[before:]]
        assert all("score" in label for label in new_labels), new_labels
        assert pool.elapsed_since(mark) > 0


# ----------------------------------------------------------------------
# service loop
# ----------------------------------------------------------------------


class TestService:
    def test_serve_accounts_every_request(self, catalog):
        service = HCDService(catalog, "base", threads=4)
        trace = synthetic_trace(40, seed=5)
        report = service.serve(trace)
        assert len(report.records) == 40
        assert report.admitted + report.shed == 40
        answered = report.computed + report.hits + report.shared
        assert answered + report.shed + report.invalid == 40
        # executor/cache reconciliation: every computed record is a real
        # cache miss, every hit record a real cache hit, and dedup
        # followers are exactly the planner's coalesced count
        assert report.computed == report.cache["misses"]
        assert report.hits == report.cache["hits"]
        assert report.shared == report.coalesced
        assert [r.rid for r in report.records] == list(range(40))
        assert report.work_units > 0
        assert report.sim_clock > 0

    def test_identical_repeat_queries_hit_cache(self, catalog):
        service = HCDService(catalog, "base", threads=2)
        entry = {"kind": "pbks", "metric": "average_degree"}
        first = service.serve([dict(entry, arrival=0)])
        second = service.serve([dict(entry, arrival=0)])
        assert first.computed == 1 and first.hits == 0
        assert second.computed == 0 and second.hits == 1
        assert service.cache.stats().hits == 1

    def test_in_flight_dedup_coalesces(self, catalog):
        service = HCDService(catalog, "base", threads=2)
        entry = {"kind": "pbks", "metric": "average_degree", "arrival": 0}
        report = service.serve([dict(entry) for _ in range(5)])
        assert report.coalesced == 4
        assert service.cache.stats().puts == 1

    def test_bounded_queue_sheds(self, catalog):
        config = ServiceConfig(queue_capacity=2, max_batch=2)
        service = HCDService(catalog, "base", threads=2, config=config)
        trace = [
            {"kind": "pbks", "metric": "average_degree", "arrival": 0}
            for _ in range(6)
        ]
        report = service.serve(trace)
        assert report.shed == 4
        assert report.admitted == 2
        shed = [r for r in report.records if r.status == "shed"]
        assert all(r.latency == 0.0 for r in shed)

    def test_invalid_requests_are_counted_not_fatal(self, catalog):
        service = HCDService(catalog, "base", threads=2)
        trace = [
            {"kind": "pbks", "metric": "average_degree", "arrival": 0},
            {"kind": "bogus", "arrival": 1},
        ]
        report = service.serve(trace)
        assert report.invalid == 1
        assert report.computed == 1
        statuses = {r.rid: r.status for r in report.records}
        assert statuses[1] == "invalid"

    def test_decreasing_arrivals_rejected(self, catalog):
        service = HCDService(catalog, "base", threads=2)
        trace = [
            {"kind": "densest", "arrival": 5},
            {"kind": "densest", "arrival": 1},
        ]
        with pytest.raises(WorkloadError, match="arrival"):
            service.serve(trace)

    def test_latency_percentiles_ordered(self, catalog):
        service = HCDService(catalog, "base", threads=4)
        report = service.serve(synthetic_trace(32, seed=9))
        assert 0 < report.p50 <= report.p95 <= report.p99
        assert sum(report.histogram().values()) == len(report.latencies)

    def test_serve_phases_visible_to_simprof(self, catalog):
        from repro.profiler import SpanTracer, phase_totals, profile_report

        pool = SimulatedPool(threads=4)
        tracer = SpanTracer()
        tracer.attach(pool)
        service = HCDService(catalog, "base", pool=pool)
        service.serve(synthetic_trace(24, seed=2))
        tracer.detach()
        totals = phase_totals(profile_report(tracer, pool), prefix="serve.")
        seen = {path.split("/")[0] for path in totals}
        assert {
            "serve.admit",
            "serve.plan",
            "serve.cache",
            "serve.execute",
        } <= seen
        assert all(elapsed >= 0 for elapsed in totals.values())

    def test_serve_kernel_sanitizer_clean(self):
        from repro.sanitizer import run_kernel

        report = run_kernel("serve_batch", threads=4, memcheck=True)
        assert report.clean, (report.races, report.memcheck_findings)


# ----------------------------------------------------------------------
# traces
# ----------------------------------------------------------------------


class TestTraces:
    def test_synthetic_trace_deterministic(self):
        assert synthetic_trace(30, seed=4) == synthetic_trace(30, seed=4)
        assert synthetic_trace(30, seed=4) != synthetic_trace(30, seed=5)

    def test_save_load_round_trip(self, tmp_path):
        trace = synthetic_trace(12, seed=1)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        assert load_trace(path) == trace

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError, match="not found"):
            load_trace(tmp_path / "nope.jsonl")

    def test_load_bad_json_names_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "densest", "arrival": 0}\n{broken\n')
        with pytest.raises(WorkloadError, match=":2"):
            load_trace(path)

    def test_load_non_object_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(WorkloadError, match="object"):
            load_trace(path)


# ----------------------------------------------------------------------
# dynamic feed: refresh + cache invalidation (satellite 1)
# ----------------------------------------------------------------------


class TestDynamicFeed:
    def test_mutation_publishes_new_version(self, tmp_path):
        graph = _graph()
        dyn = DynamicGraph(graph)
        cat = SnapshotCatalog(tmp_path)
        feed = DynamicServingFeed(dyn, cat, name="live", threads=2)
        assert feed.publish() == 1
        u, v = self._absent_edge(dyn)
        assert feed.insert_edge(u, v) == 2
        assert cat.latest_version("live") == 2
        # the published snapshot reflects the maintained coreness
        snap = cat.open("live")
        assert np.array_equal(
            snap.coreness, core_decomposition(dyn.to_graph())
        )
        assert dyn.mutation_count == 1
        assert "dynamic" in snap.build_info["algorithm"]

    def test_refresh_invalidates_cached_results(self, tmp_path):
        graph = _graph()
        dyn = DynamicGraph(graph)
        cat = SnapshotCatalog(tmp_path)
        feed = DynamicServingFeed(dyn, cat, name="live", threads=2)
        feed.publish()

        service = HCDService(cat, "live", threads=2)
        entry = {"kind": "pbks", "metric": "average_degree", "arrival": 0}
        first = service.serve([dict(entry)])
        assert first.computed == 1
        assert first.snapshot == ("live", 1)

        # mutate -> new version; the old cached result must not be served
        u, v = self._absent_edge(dyn)
        feed.insert_edge(u, v)
        second = service.serve([dict(entry)])
        assert second.snapshot == ("live", 2)
        assert second.hits == 0  # old-version entry is dead, recomputed
        assert second.computed == 1
        # the stale entry is still *in* the LRU, just unreachable
        assert service.cache.stats().size == 2

        # same version again -> now it hits
        third = service.serve([dict(entry)])
        assert third.hits == 1

    @staticmethod
    def _absent_edge(dyn):
        for u in range(dyn.num_vertices):
            for v in range(u + 1, dyn.num_vertices):
                if not dyn.has_edge(u, v):
                    return u, v
        raise AssertionError("graph is complete")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestServeCli:
    def test_build_and_serve(self, tmp_path, capsys):
        from repro.cli import main

        catalog_dir = tmp_path / "cat"
        report_path = tmp_path / "report.json"
        code = main(
            [
                "serve",
                "--build",
                "--dataset",
                "AS",
                "--catalog",
                str(catalog_dir),
                "--snapshot",
                "as",
                "--synthetic",
                "24",
                "--json",
                str(report_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "published 'as' v1" in out
        assert "latency" in out
        payload = json.loads(report_path.read_text())
        assert payload["snapshot"] == {"name": "as", "version": 1}
        assert payload["requests"] == 24

    def test_serve_unknown_snapshot_fails(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["serve", "--catalog", str(tmp_path), "--snapshot", "ghost"]
        )
        assert code == 1
        assert "serve failed" in capsys.readouterr().err
