"""Tests for atomic wrappers and parallel tree accumulation."""

import numpy as np
import pytest

from repro.errors import HierarchyError
from repro.parallel.accumulate import tree_accumulate, tree_depths
from repro.parallel.atomics import AtomicArray, AtomicCounter, AtomicList, AtomicSet
from repro.parallel.context import ThreadContext
from repro.parallel.cost_model import DEFAULT_COST_MODEL
from repro.parallel.scheduler import SimulatedPool


@pytest.fixture
def ctx():
    return ThreadContext(0, DEFAULT_COST_MODEL)


class TestAtomicCounter:
    def test_fetch_add(self, ctx):
        counter = AtomicCounter()
        assert counter.fetch_add(ctx) == 0
        assert counter.fetch_add(ctx, 5) == 1
        assert counter.value == 6

    def test_charges_atomic(self, ctx):
        AtomicCounter().fetch_add(ctx)
        assert ctx.atomic_ops == 1


class TestAtomicArray:
    def test_add_store_load(self, ctx):
        arr = AtomicArray(4)
        arr.add(ctx, 1, 7)
        arr.store(ctx, 2, 9)
        assert arr.load(ctx, 1) == 7
        assert arr.data[2] == 9
        assert len(arr) == 4

    def test_cas_success_and_failure(self, ctx):
        arr = AtomicArray(2)
        assert arr.compare_and_swap(ctx, 0, 0, 5)
        assert not arr.compare_and_swap(ctx, 0, 0, 9)
        assert arr.data[0] == 5

    def test_float_dtype(self, ctx):
        arr = AtomicArray(2, dtype=np.float64)
        arr.add(ctx, 0, 0.5)
        assert arr.data[0] == pytest.approx(0.5)


class TestAtomicSet:
    def test_dedup(self, ctx):
        s = AtomicSet()
        assert s.add_if_absent(ctx, 3)
        assert not s.add_if_absent(ctx, 3)
        assert len(s) == 1
        assert 3 in s

    def test_sorted_iteration(self, ctx):
        s = AtomicSet()
        for item in (5, 1, 9, 2):
            s.add_if_absent(ctx, item)
        assert list(s) == [1, 2, 5, 9]


class TestAtomicList:
    def test_append(self, ctx):
        lst = AtomicList()
        lst.append(ctx, "a")
        lst.append(ctx, "b")
        assert lst.snapshot() == ["a", "b"]
        assert len(lst) == 2


class TestTreeDepths:
    def test_single_chain(self):
        assert np.array_equal(tree_depths([-1, 0, 1, 2]), [0, 1, 2, 3])

    def test_forest(self):
        depths = tree_depths([-1, -1, 0, 1, 2])
        assert np.array_equal(depths, [0, 0, 1, 1, 2])

    def test_cycle_detected(self):
        with pytest.raises(HierarchyError):
            tree_depths([1, 0])

    def test_out_of_range_parent(self):
        with pytest.raises(HierarchyError):
            tree_depths([5])

    def test_empty(self):
        assert tree_depths([]).size == 0


class TestTreeAccumulate:
    def _oracle(self, parents, values):
        """Subtree sums by brute force."""
        parents = np.asarray(parents)
        n = parents.size
        out = np.array(values, dtype=np.float64, copy=True)
        # push repeatedly until fixpoint (small n)
        children = [[] for _ in range(n)]
        for i, p in enumerate(parents):
            if p >= 0:
                children[p].append(i)

        def subtree(i):
            total = np.array(values[i], dtype=np.float64)
            for ch in children[i]:
                total = total + subtree(ch)
            return total

        return np.stack([subtree(i) for i in range(n)])

    @pytest.mark.parametrize("threads", [1, 3, 8])
    def test_matches_oracle_2d(self, threads):
        parents = [-1, 0, 0, 1, 1, 2, -1, 6]
        values = np.arange(16, dtype=np.float64).reshape(8, 2)
        pool = SimulatedPool(threads=threads)
        got = tree_accumulate(pool, parents, values)
        assert np.allclose(got, self._oracle(parents, values))

    def test_matches_oracle_1d(self):
        parents = [-1, 0, 1, 1]
        values = np.array([1.0, 2.0, 3.0, 4.0])
        pool = SimulatedPool(threads=2)
        got = tree_accumulate(pool, parents, values)
        assert np.allclose(got, [10.0, 9.0, 3.0, 4.0])

    def test_input_not_mutated(self):
        values = np.ones((3, 1))
        tree_accumulate(SimulatedPool(), [-1, 0, 0], values)
        assert np.allclose(values, 1.0)

    def test_empty_forest(self):
        out = tree_accumulate(SimulatedPool(), [], np.zeros((0, 2)))
        assert out.shape == (0, 2)

    def test_row_mismatch(self):
        with pytest.raises(HierarchyError):
            tree_accumulate(SimulatedPool(), [-1, 0], np.zeros((3, 1)))

    def test_thread_count_invariance(self):
        parents = [-1, 0, 0, 2, 2, 2, -1]
        values = np.random.default_rng(0).random((7, 3))
        results = [
            tree_accumulate(SimulatedPool(threads=p), parents, values)
            for p in (1, 2, 5)
        ]
        for other in results[1:]:
            assert np.allclose(results[0], other)


class TestTreeAccumulateEuler:
    @pytest.mark.parametrize("threads", [1, 3, 8])
    def test_matches_level_synchronous(self, threads):
        rng = np.random.default_rng(5)
        size = 40
        parents = np.array(
            [
                -1 if i == 0 or rng.random() < 0.2 else int(rng.integers(0, i))
                for i in range(size)
            ],
            dtype=np.int64,
        )
        values = rng.random((size, 3))
        a = tree_accumulate(SimulatedPool(threads=threads), parents, values)
        from repro.parallel.accumulate import tree_accumulate_euler

        b = tree_accumulate_euler(
            SimulatedPool(threads=threads), parents, values
        )
        assert np.allclose(a, b)

    def test_1d_and_empty(self):
        from repro.parallel.accumulate import tree_accumulate_euler

        out = tree_accumulate_euler(
            SimulatedPool(), [-1, 0, 1], np.array([1.0, 2.0, 4.0])
        )
        assert np.allclose(out, [7.0, 6.0, 4.0])
        empty = tree_accumulate_euler(SimulatedPool(), [], np.zeros((0, 2)))
        assert empty.shape == (0, 2)

    def test_fewer_regions_on_deep_chain(self):
        from repro.parallel.accumulate import tree_accumulate_euler

        # chain of 200 nodes: depth-synchronous needs ~200 regions,
        # the Euler scan needs ~log2(200) + 2
        parents = [-1] + list(range(199))
        values = np.ones((200, 1))
        pool_level = SimulatedPool(threads=4)
        tree_accumulate(pool_level, parents, values)
        pool_euler = SimulatedPool(threads=4)
        tree_accumulate_euler(pool_euler, parents, values)
        assert len(pool_euler.regions) < len(pool_level.regions) / 5

    def test_cycle_rejected(self):
        from repro.parallel.accumulate import tree_accumulate_euler

        with pytest.raises(HierarchyError):
            tree_accumulate_euler(SimulatedPool(), [1, 0], np.ones((2, 1)))
