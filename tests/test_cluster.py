"""Tests for SimCluster: network model, sharding, distributed
decomposition bit-identity, fault-tolerant sharded serving, and the
cluster profiler."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.datasets import dataset_names, load
from repro.cli import main
from repro.cluster import (
    ClusterProfiler,
    ClusterService,
    ClusterServiceConfig,
    Network,
    NetworkConfig,
    SimCluster,
    SimNode,
    distributed_core_decomposition,
    shard_graph,
)
from repro.core.decomposition import core_decomposition
from repro.core.distributed import mpm_core_decomposition
from repro.graph.generators import powerlaw_cluster
from repro.parallel.scheduler import SimulatedPool
from repro.serve import (
    HCDService,
    SnapshotCatalog,
    build_snapshot,
    synthetic_trace,
)


def _graph():
    return powerlaw_cluster(90, 3, 0.35, seed=13)


# ----------------------------------------------------------------------
# network cost model
# ----------------------------------------------------------------------


class TestNetwork:
    def test_switch_is_one_hop(self):
        net = Network(4)
        assert net.hops(0, 3) == 1
        assert net.hops(2, 1) == 1
        assert net.hops(1, 1) == 0

    def test_ring_distance(self):
        net = Network(6, NetworkConfig(topology="ring"))
        assert net.hops(0, 1) == 1
        assert net.hops(0, 3) == 3
        assert net.hops(0, 5) == 1  # wraps around

    def test_cost_is_latency_plus_bytes(self):
        net = Network(2, NetworkConfig(latency=100.0, byte_cost=0.5))
        assert net.cost(0, 1, 40) == 100.0 + 20.0

    def test_send_counts_and_charges(self):
        net = Network(3)
        charged = net.send(0, 2, 80)
        assert charged == net.config.latency + 80 * net.config.byte_cost
        assert net.messages == 1
        assert net.bytes_sent == 80
        assert net.total_cost == charged
        assert net.links[(0, 2)] == [1, 80]

    def test_local_send_free_and_uncounted(self):
        net = Network(2)
        assert net.send(1, 1, 1000) == 0.0
        assert net.messages == 0
        assert net.total_cost == 0.0

    def test_reset(self):
        net = Network(2)
        net.send(0, 1, 8)
        net.reset()
        assert net.messages == 0 and net.bytes_sent == 0
        assert net.links == {}

    def test_stats_shape(self):
        net = Network(2)
        net.send(0, 1, 8)
        stats = net.stats()
        assert stats["messages"] == 1
        assert stats["links"]["0->1"] == {"messages": 1, "bytes": 8}
        json.dumps(stats)  # JSON-ready

    def test_endpoint_range_checked(self):
        net = Network(2)
        with pytest.raises(ValueError):
            net.send(0, 2, 8)
        with pytest.raises(ValueError):
            net.cost(-1, 0, 8)
        with pytest.raises(ValueError):
            net.hops(0, 5)

    def test_bad_topology_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(topology="torus")

    def test_negative_nbytes_rejected(self):
        net = Network(2)
        with pytest.raises(ValueError, match=r"0->1.*>= 0"):
            net.send(0, 1, -1)
        with pytest.raises(ValueError, match=">= 0"):
            net.cost(0, 1, -8)
        assert net.messages == 0 and net.bytes_sent == 0

    @pytest.mark.parametrize("bad", [2.5, "8", None, True])
    def test_non_int_nbytes_rejected(self, bad):
        net = Network(2)
        with pytest.raises(ValueError, match="must be an int"):
            net.send(0, 1, bad)
        with pytest.raises(ValueError, match="must be an int"):
            net.cost(0, 1, bad)

    def test_numpy_integer_nbytes_accepted(self):
        net = Network(2)
        net.send(0, 1, np.int64(8))
        assert net.bytes_sent == 8

    def test_ring_and_switch_disagree_beyond_neighbors(self):
        ring = Network(6, NetworkConfig(topology="ring"))
        switch = Network(6)
        assert switch.hops(0, 3) == 1
        assert ring.hops(0, 3) == 3
        assert ring.cost(0, 3, 0) == 3 * ring.config.latency

    def test_reset_stats_round_trip(self):
        net = Network(3)
        net.send(0, 1, 8)
        net.send(1, 2, 24)
        before = net.stats()
        assert before["messages"] == 2 and before["bytes"] == 32
        net.reset()
        cleared = net.stats()
        assert cleared["messages"] == 0
        assert cleared["bytes"] == 0
        assert cleared["cost"] == 0.0
        assert cleared["links"] == {}
        # counters accumulate identically after a reset
        net.send(0, 1, 8)
        net.send(1, 2, 24)
        assert net.stats() == before


# ----------------------------------------------------------------------
# sharding
# ----------------------------------------------------------------------


class TestShardGraph:
    def test_range_partition_covers_all_vertices(self):
        graph = _graph()
        sharded = shard_graph(graph, 4, strategy="range")
        owned = np.concatenate([p.owned for p in sharded.parts])
        assert sorted(owned.tolist()) == list(range(graph.num_vertices))
        assert sharded.owner.shape == (graph.num_vertices,)

    def test_boundary_and_ghosts_are_consistent(self):
        graph = _graph()
        sharded = shard_graph(graph, 3, strategy="range")
        indptr, indices = graph.indptr, graph.indices
        for part in sharded.parts:
            for v in part.boundary.tolist():
                row = indices[indptr[v] : indptr[v + 1]]
                owners = set(sharded.owner[row].tolist())
                assert owners - {part.shard_id}, "boundary vertex has no remote neighbor"
            ghost_owner = set(sharded.owner[part.ghosts].tolist())
            assert part.shard_id not in ghost_owner

    def test_targets_point_at_neighbor_owners(self):
        graph = _graph()
        sharded = shard_graph(graph, 3, strategy="range")
        for part in sharded.parts:
            for v, dests in part.targets.items():
                row = graph.indices[graph.indptr[v] : graph.indptr[v + 1]]
                neighbor_owners = set(sharded.owner[row].tolist())
                assert set(dests) <= neighbor_owners

    def test_lp_partition_reduces_cut(self):
        graph = load("as_skitter").graph
        by_range = shard_graph(graph, 4, strategy="range")
        by_lp = shard_graph(graph, 4, strategy="lp")
        assert by_lp.edge_cut < by_range.edge_cut

    def test_single_shard_has_no_cut(self):
        sharded = shard_graph(_graph(), 1)
        assert sharded.edge_cut == 0
        assert sharded.parts[0].boundary.size == 0

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            shard_graph(_graph(), 2, strategy="metis")

    def test_unknown_strategy_beats_trivial_short_circuit(self):
        # validation first: even the degenerate cases reject bad names
        from repro.graph.graph import Graph

        with pytest.raises(ValueError):
            shard_graph(Graph.from_edges([], num_vertices=0), 2, strategy="metis")
        with pytest.raises(ValueError):
            shard_graph(_graph(), 1, strategy="metis")

    @pytest.mark.parametrize("strategy", ["range", "lp"])
    def test_empty_graph(self, strategy):
        from repro.graph.graph import Graph

        sharded = shard_graph(
            Graph.from_edges([], num_vertices=0), 4, strategy=strategy
        )
        assert sharded.owner.shape == (0,)
        assert len(sharded.parts) == 4
        assert sharded.edge_cut == 0
        for part in sharded.parts:
            assert part.owned.size == 0
            assert part.boundary.size == 0
        json.dumps(sharded.stats())

    def test_single_shard_lp_is_trivial(self):
        # shards=1 short-circuits before label propagation ever runs
        graph = _graph()
        sharded = shard_graph(graph, 1, strategy="lp")
        assert np.all(sharded.owner == 0)
        assert sharded.edge_cut == 0
        assert sharded.parts[0].owned.size == graph.num_vertices

    def test_stats_json_ready(self):
        json.dumps(shard_graph(_graph(), 2).stats())


# ----------------------------------------------------------------------
# cluster substrate
# ----------------------------------------------------------------------


class TestSimCluster:
    def test_superstep_clock_is_max_compute_plus_comms(self):
        cluster = SimCluster(2, threads=2)

        def work(units):
            def run(node: SimNode) -> None:
                with node.pool.serial_region("w") as ctx:
                    ctx.charge(units)

            return run

        def exchange():
            cluster.network.send(0, 1, 8)

        record = cluster.superstep("t", {0: work(10), 1: work(30)}, exchange)
        assert record.compute == max(record.node_compute.values())
        assert record.comms == cluster.network.total_cost
        assert cluster.clock == record.compute + record.comms

    def test_slow_factor_scales_compute(self):
        cluster = SimCluster(2, threads=2)
        cluster.slow(1, 4.0)

        def run(node: SimNode) -> None:
            with node.pool.serial_region("w") as ctx:
                ctx.charge(10)

        record = cluster.superstep("t", {0: run, 1: run})
        assert record.node_compute[1] == 4.0 * record.node_compute[0]

    def test_dead_node_skipped(self):
        cluster = SimCluster(2, threads=2)
        cluster.nodes[0].alive = False
        ran = []
        cluster.superstep("t", {0: lambda n: ran.append(0), 1: lambda n: ran.append(1)})
        assert ran == [1]

    def test_crash_validation(self):
        cluster = SimCluster(2)
        with pytest.raises(ValueError):
            cluster.crash(0, at=100.0, recover_at=50.0)
        with pytest.raises(ValueError):
            cluster.slow(0, 0.5)

    def test_shared_pool_mode(self):
        pool = SimulatedPool(threads=4)
        cluster = SimCluster(3, pool=pool)
        assert cluster.pools() == [pool]
        assert all(node.pool is pool for node in cluster.nodes)


# ----------------------------------------------------------------------
# distributed decomposition: bit-identity at every configuration
# ----------------------------------------------------------------------


class TestDistributedDecomposition:
    @pytest.mark.parametrize("name", dataset_names())
    def test_bit_identical_on_registry_sweep(self, name):
        """1/2/4/8 shards x 1/2/4 threads-per-node, every dataset."""
        graph = load(name).graph
        reference = core_decomposition(graph)
        for shards in (1, 2, 4, 8):
            sharded = shard_graph(graph, shards, strategy="range")
            for threads in (1, 2, 4):
                cluster = SimCluster(shards, threads=threads)
                report = distributed_core_decomposition(
                    graph, cluster, sharded
                )
                assert (report.coreness == reference).all(), (
                    f"{name}: shards={shards} threads={threads}"
                )

    def test_bit_identical_with_lp_partition(self):
        graph = load("as_skitter").graph
        reference = core_decomposition(graph)
        for shards in (2, 4):
            sharded = shard_graph(graph, shards, strategy="lp")
            cluster = SimCluster(shards, threads=4)
            report = distributed_core_decomposition(graph, cluster, sharded)
            assert (report.coreness == reference).all()

    def test_single_shard_is_one_superstep_of_mpm(self):
        graph = _graph()
        cluster = SimCluster(1, threads=4)
        sharded = shard_graph(graph, 1)
        report = distributed_core_decomposition(graph, cluster, sharded)
        assert report.supersteps == 1
        assert report.messages == 0
        assert (report.coreness == core_decomposition(graph)).all()

    def test_report_accounting(self):
        graph = _graph()
        cluster = SimCluster(4, threads=2)
        sharded = shard_graph(graph, 4, strategy="range")
        report = distributed_core_decomposition(graph, cluster, sharded)
        assert report.supersteps == len(cluster.supersteps)
        assert report.messages == cluster.network.messages > 0
        assert report.bytes_sent == cluster.network.bytes_sent > 0
        assert report.compute_clock > 0 and report.comms_clock > 0
        assert report.cluster_clock == cluster.clock
        payload = report.as_dict()
        assert payload["comms_compute_ratio"] > 0
        json.dumps(payload)

    def test_shard_count_must_match_cluster(self):
        graph = _graph()
        with pytest.raises(ValueError):
            distributed_core_decomposition(
                graph, SimCluster(2), shard_graph(graph, 4)
            )

    def test_mpm_direct(self):
        """The single-node MPM baseline converges to the exact coreness."""
        graph = _graph()
        pool = SimulatedPool(threads=4)
        coreness, rounds = mpm_core_decomposition(graph, pool)
        assert (coreness == core_decomposition(graph)).all()
        assert 0 < rounds <= int(coreness.max()) + graph.num_vertices

    def test_cluster_supersteps_at_most_mpm_rounds(self):
        # shard-grained supersteps batch many MPM rounds: the exchange
        # count never exceeds the per-vertex round count
        graph = load("as_skitter").graph
        _, rounds = mpm_core_decomposition(graph, SimulatedPool(4))
        cluster = SimCluster(4, threads=4)
        report = distributed_core_decomposition(
            graph, cluster, shard_graph(graph, 4, strategy="range")
        )
        assert report.supersteps <= rounds


# ----------------------------------------------------------------------
# sharded serving
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def serve_setup(tmp_path_factory):
    graph = load("as_skitter").graph
    root = tmp_path_factory.mktemp("cluster-catalog")
    catalog = SnapshotCatalog(root)
    catalog.publish(build_snapshot(graph, name="as"))
    trace = synthetic_trace(48, seed=7)
    reference = HCDService(catalog, "as").serve(trace)
    return catalog, trace, reference


class TestClusterService:
    @pytest.mark.parametrize(
        "shards,replicas", [(1, 1), (2, 1), (2, 2), (4, 2)]
    )
    def test_byte_identical_to_single_service(
        self, serve_setup, shards, replicas
    ):
        catalog, trace, reference = serve_setup
        service = ClusterService(
            catalog,
            "as",
            config=ClusterServiceConfig(
                num_shards=shards, replicas=replicas
            ),
        )
        report = service.serve(trace)
        assert report.answers_digest() == reference.answers_digest()
        assert report.answers() == reference.answers()
        assert report.failed == 0

    def test_crash_mid_run_fails_over_with_zero_wrong_answers(
        self, serve_setup
    ):
        catalog, trace, reference = serve_setup
        service = ClusterService(
            catalog,
            "as",
            config=ClusterServiceConfig(num_shards=2, replicas=2),
        )
        service.crash(0, at=500.0)
        report = service.serve(trace)
        assert report.failovers >= 1
        assert report.failed == 0
        assert not service.cluster.nodes[0].alive
        assert report.answers_digest() == reference.answers_digest()

    def test_crash_replay_is_deterministic(self, serve_setup):
        catalog, trace, _ = serve_setup

        def run():
            service = ClusterService(
                catalog,
                "as",
                config=ClusterServiceConfig(num_shards=2, replicas=2),
            )
            service.crash(0, at=500.0)
            return service.serve(trace)

        first, second = run(), run()
        assert first.as_dict() == second.as_dict()
        assert [r.as_dict() for r in first.records] == [
            r.as_dict() for r in second.records
        ]

    def test_recovery_reregisters_from_catalog(self, serve_setup):
        catalog, trace, reference = serve_setup
        service = ClusterService(
            catalog,
            "as",
            config=ClusterServiceConfig(num_shards=1, replicas=2),
        )
        service.crash(0, at=300.0, recover_at=5000.0)
        report = service.serve(trace)
        assert report.recoveries == 1
        assert service.cluster.nodes[0].alive
        assert service.cluster.nodes[0].service is not None
        assert report.answers_digest() == reference.answers_digest()

    def test_slow_node_hedges_and_stays_identical(self, serve_setup):
        catalog, trace, reference = serve_setup
        config = ClusterServiceConfig(
            num_shards=2, replicas=2, hedge_timeout=2000.0
        )
        service = ClusterService(catalog, "as", config=config)
        service.slow(0, 8.0)
        report = service.serve(trace)
        assert report.hedges >= 1
        assert report.answers_digest() == reference.answers_digest()

    def test_hedging_cuts_tail_latency_under_slow_node(self, serve_setup):
        catalog, trace, _ = serve_setup
        slowed = ClusterServiceConfig(num_shards=2, replicas=2)
        hedged = ClusterServiceConfig(
            num_shards=2, replicas=2, hedge_timeout=2000.0
        )
        without = ClusterService(catalog, "as", config=slowed)
        without.slow(0, 8.0)
        p99_without = without.serve(trace).p99
        with_hedge = ClusterService(catalog, "as", config=hedged)
        with_hedge.slow(0, 8.0)
        p99_with = with_hedge.serve(trace).p99
        assert p99_with < p99_without

    def test_all_replicas_dead_fails_requests(self, serve_setup):
        catalog, trace, _ = serve_setup
        service = ClusterService(
            catalog,
            "as",
            config=ClusterServiceConfig(num_shards=1, replicas=1),
        )
        service.crash(0, at=0.0)
        report = service.serve(trace)
        assert report.failed > 0
        assert report.answers() == {}

    def test_report_shape(self, serve_setup):
        catalog, trace, _ = serve_setup
        service = ClusterService(
            catalog,
            "as",
            config=ClusterServiceConfig(num_shards=2, replicas=2),
        )
        report = service.serve(trace)
        payload = report.as_dict()
        assert payload["num_shards"] == 2
        assert payload["replicas"] == 2
        assert payload["network"]["messages"] > 0
        assert len(payload["per_shard"]) == 2
        assert sum(s["requests"] for s in payload["per_shard"]) > 0
        assert payload["cluster_clock"] > 0
        json.dumps(payload)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterServiceConfig(num_shards=0)
        with pytest.raises(ValueError):
            ClusterServiceConfig(replicas=0)
        with pytest.raises(ValueError):
            ClusterServiceConfig(hedge_timeout=0.0)

    def test_cannot_crash_router(self, serve_setup):
        catalog, _, _ = serve_setup
        service = ClusterService(
            catalog,
            "as",
            config=ClusterServiceConfig(num_shards=1, replicas=1),
        )
        with pytest.raises(ValueError):
            service.crash(1, at=0.0)  # node 1 is the router


# ----------------------------------------------------------------------
# cluster profiler
# ----------------------------------------------------------------------


class TestClusterProfiler:
    def test_zero_perturbation(self):
        graph = _graph()

        def run(profiled: bool) -> tuple[float, np.ndarray]:
            cluster = SimCluster(4, threads=4)
            sharded = shard_graph(graph, 4, strategy="range")
            if profiled:
                with ClusterProfiler(cluster):
                    report = distributed_core_decomposition(
                        graph, cluster, sharded
                    )
            else:
                report = distributed_core_decomposition(
                    graph, cluster, sharded
                )
            return cluster.clock, report.coreness

        clock_without, coreness_without = run(False)
        clock_with, coreness_with = run(True)
        assert clock_with - clock_without == 0.0
        assert (coreness_with == coreness_without).all()

    def test_chrome_trace_has_one_process_lane_per_node(self):
        graph = _graph()
        cluster = SimCluster(3, threads=2)
        with ClusterProfiler(cluster) as prof:
            distributed_core_decomposition(
                graph, cluster, shard_graph(graph, 3)
            )
        trace = prof.chrome_trace()
        names = {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event.get("name") == "process_name"
        }
        assert names == {"node 0", "node 1", "node 2"}
        pids = {event["pid"] for event in trace["traceEvents"]}
        assert pids == {0, 1, 2}
        # vthread lanes exist under each node's process
        vthread = [
            e for e in trace["traceEvents"] if e.get("cat") == "vthread"
        ]
        assert {e["pid"] for e in vthread} == {0, 1, 2}

    def test_report_carries_per_shard_work_and_comms(self):
        graph = _graph()
        cluster = SimCluster(2, threads=2)
        with ClusterProfiler(cluster) as prof:
            distributed_core_decomposition(
                graph, cluster, shard_graph(graph, 2)
            )
        report = prof.report()
        assert len(report["per_shard"]) == 2
        assert all(s["compute"] >= 0 for s in report["per_shard"])
        assert sum(s["bytes_sent"] for s in report["per_shard"]) > 0
        assert report["supersteps"]
        assert report["network"]["messages"] > 0
        paths = {p["path"] for np_ in report["node_profiles"]
                 for p in np_["profile"]["phases"]}
        assert "cluster.local" in paths
        json.dumps(report)

    def test_write_artifacts(self, tmp_path):
        graph = _graph()
        cluster = SimCluster(2, threads=2)
        with ClusterProfiler(cluster) as prof:
            distributed_core_decomposition(
                graph, cluster, shard_graph(graph, 2)
            )
        paths = prof.write_artifacts(tmp_path)
        assert paths["profile"].exists() and paths["trace"].exists()
        json.loads(paths["profile"].read_text())
        json.loads(paths["trace"].read_text())

    def test_shared_pool_cluster_gets_one_lane(self):
        graph = _graph()
        pool = SimulatedPool(threads=4)
        cluster = SimCluster(2, pool=pool)
        with ClusterProfiler(cluster) as prof:
            distributed_core_decomposition(
                graph, cluster, shard_graph(graph, 2)
            )
        trace = prof.chrome_trace()
        names = {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event.get("name") == "process_name"
        }
        assert names == {"nodes 0,1 (shared pool)"}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestClusterCLI:
    def test_decompose_mode(self, capsys):
        assert main(["cluster", "--dataset", "AS", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical to single-node decomposition: True" in out
        assert "supersteps" in out

    def test_mpm_baseline_flag(self, capsys):
        assert (
            main(["cluster", "--dataset", "AS", "--shards", "2", "--mpm"])
            == 0
        )
        out = capsys.readouterr().out
        assert "mpm" in out
        assert "identical=True" in out

    def test_serve_mode_with_faults(self, tmp_path, capsys):
        code = main(
            [
                "cluster",
                "--dataset",
                "AS",
                "--shards",
                "2",
                "--serve",
                "16",
                "--build",
                "--catalog",
                str(tmp_path / "cat"),
                "--crash",
                "0:500",
                "--json",
                str(tmp_path / "report.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "failover(s)" in out
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["serve"]["failed"] == 0
        assert payload["serve"]["failovers"] >= 1

    def test_profile_out(self, tmp_path, capsys):
        code = main(
            [
                "cluster",
                "--dataset",
                "AS",
                "--shards",
                "2",
                "--profile-out",
                str(tmp_path / "prof"),
            ]
        )
        assert code == 0
        assert (tmp_path / "prof" / "cluster_profile.json").exists()
        assert (tmp_path / "prof" / "cluster_trace.json").exists()

    def test_bad_fault_spec(self, capsys):
        assert (
            main(
                [
                    "cluster",
                    "--dataset",
                    "AS",
                    "--serve",
                    "4",
                    "--crash",
                    "zero",
                ]
            )
            == 2
        )
