"""Tests for the union-find family, including failure injection."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi
from repro.parallel.context import ThreadContext
from repro.parallel.cost_model import DEFAULT_COST_MODEL
from repro.unionfind.pivot import PivotUnionFind
from repro.unionfind.sequential import UnionFind
from repro.unionfind.waitfree import SimulatedWaitFreeUnionFind


class TestSequential:
    def test_initially_disjoint(self):
        uf = UnionFind(4)
        assert uf.num_components == 4
        assert not uf.same_set(0, 1)

    def test_union_find(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(3, 4)
        assert uf.same_set(0, 1)
        assert uf.same_set(4, 3)
        assert not uf.same_set(1, 3)
        assert uf.num_components == 3

    def test_union_idempotent(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        uf.union(1, 0)
        assert uf.num_components == 2

    def test_component_labels_consistent(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        labels = uf.component_labels()
        assert labels[0] == labels[1] == labels[2]
        assert len(set(labels.tolist())) == 4

    def test_matches_graph_components(self):
        g = erdos_renyi(80, 0.03, seed=3)
        uf = UnionFind(80)
        for u, v in g.edges():
            uf.union(u, v)
        labels = g.connected_components()
        for u in range(80):
            for v in range(u + 1, 80):
                assert uf.same_set(u, v) == (labels[u] == labels[v])

    def test_len(self):
        assert len(UnionFind(7)) == 7


def _ranks(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.permutation(n).astype(np.int64)


class TestPivot:
    def test_pivot_initial(self):
        uf = PivotUnionFind(_ranks(4))
        for x in range(4):
            assert uf.get_pivot(x) == x

    def test_pivot_is_min_rank_member(self):
        ranks = _ranks(30, seed=1)
        uf = PivotUnionFind(ranks)
        g = erdos_renyi(30, 0.1, seed=2)
        for u, v in g.edges():
            uf.union(u, v)
        labels = g.connected_components()
        for comp in np.unique(labels):
            members = np.flatnonzero(labels == comp)
            expected = members[np.argmin(ranks[members])]
            for x in members:
                assert uf.get_pivot(int(x)) == expected

    def test_charges_context(self):
        ctx = ThreadContext(0, DEFAULT_COST_MODEL)
        uf = PivotUnionFind(_ranks(4))
        uf.union(0, 1, ctx)
        assert ctx.work > 0
        assert ctx.atomic_ops >= 1

    def test_num_components(self):
        uf = PivotUnionFind(_ranks(5))
        uf.union(0, 1)
        assert uf.num_components == 4


class TestWaitFree:
    @pytest.mark.parametrize("failure_rate", [0.0, 0.2, 0.6])
    def test_matches_sequential(self, failure_rate):
        ranks = _ranks(40, seed=4)
        ref = PivotUnionFind(ranks)
        wf = SimulatedWaitFreeUnionFind(ranks, failure_rate=failure_rate, seed=9)
        g = erdos_renyi(40, 0.08, seed=5)
        for u, v in g.edges():
            ref.union(u, v)
            wf.union(u, v)
        for x in range(40):
            for y in range(x + 1, 40):
                assert ref.same_set(x, y) == wf.same_set(x, y)
            assert ref.get_pivot(x) == wf.get_pivot(x)

    def test_failures_counted(self):
        ranks = _ranks(50, seed=0)
        wf = SimulatedWaitFreeUnionFind(ranks, failure_rate=0.5, seed=1)
        g = erdos_renyi(50, 0.1, seed=6)
        for u, v in g.edges():
            wf.union(u, v)
        assert wf.cas_failures > 0
        assert wf.cas_attempts > wf.cas_failures

    def test_no_failures_at_zero_rate(self):
        ranks = _ranks(20)
        wf = SimulatedWaitFreeUnionFind(ranks, failure_rate=0.0)
        for x in range(19):
            wf.union(x, x + 1)
        assert wf.cas_failures == 0

    def test_deterministic_failure_process(self):
        ranks = _ranks(30)
        runs = []
        for _ in range(2):
            wf = SimulatedWaitFreeUnionFind(ranks, failure_rate=0.3, seed=7)
            for x in range(29):
                wf.union(x, x + 1)
            runs.append(wf.cas_failures)
        assert runs[0] == runs[1]

    def test_num_components(self):
        wf = SimulatedWaitFreeUnionFind(_ranks(6))
        wf.union(0, 1)
        wf.union(2, 3)
        assert wf.num_components == 4

    def test_charges_cas_as_contended_atomic(self):
        ctx = ThreadContext(0, DEFAULT_COST_MODEL)
        wf = SimulatedWaitFreeUnionFind(_ranks(4))
        wf.union(0, 1, ctx)
        assert ctx.atomic_ops >= 1
        assert len(ctx.atomic_locations) >= 1
