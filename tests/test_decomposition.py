"""Tests for core decomposition: BZ reference, PKC, ParK, vertex rank."""

import numpy as np
import pytest

from repro.core.decomposition import core_decomposition, k_core_members, shell_sizes
from repro.core.park import park_core_decomposition
from repro.core.pkc import pkc_core_decomposition
from repro.core.vertex_rank import compute_vertex_rank
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    star_graph,
)
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool


class TestBatageljZaversnik:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx(self, seed, coreness_oracle):
        g = erdos_renyi(100, 0.05, seed=seed)
        assert np.array_equal(core_decomposition(g), coreness_oracle(g))

    def test_heavy_tailed(self, coreness_oracle):
        g = barabasi_albert(150, 4, seed=1)
        assert np.array_equal(core_decomposition(g), coreness_oracle(g))

    def test_complete(self):
        assert np.array_equal(core_decomposition(complete_graph(5)), [4] * 5)

    def test_cycle(self):
        assert np.array_equal(core_decomposition(cycle_graph(6)), [2] * 6)

    def test_star(self):
        assert np.array_equal(core_decomposition(star_graph(4)), [1] * 5)

    def test_isolated_vertices(self):
        g = Graph.from_edges([(0, 1)], num_vertices=4)
        assert np.array_equal(core_decomposition(g), [1, 1, 0, 0])

    def test_empty_graph(self):
        assert core_decomposition(Graph.empty(0)).size == 0

    def test_charges_pool(self):
        pool = SimulatedPool()
        core_decomposition(cycle_graph(5), pool)
        assert pool.clock > 0

    def test_mixed_components(self, coreness_oracle):
        edges = list(complete_graph(4).edges())
        edges += [(u + 4, v + 4) for u, v in cycle_graph(5).edges()]
        g = Graph.from_edges(edges, num_vertices=10)
        assert np.array_equal(core_decomposition(g), coreness_oracle(g))


class TestHelpers:
    def test_k_core_members(self):
        coreness = np.array([0, 1, 2, 2, 3])
        assert np.array_equal(k_core_members(coreness, 2), [2, 3, 4])
        assert k_core_members(coreness, 9).size == 0

    def test_shell_sizes(self):
        coreness = np.array([0, 1, 1, 2])
        assert np.array_equal(shell_sizes(coreness), [1, 2, 1])

    def test_shell_sizes_empty(self):
        assert np.array_equal(shell_sizes(np.array([], dtype=np.int64)), [0])


class TestParallelDecomposition:
    @pytest.mark.parametrize("threads", [1, 2, 4, 9])
    def test_pkc_matches_bz(self, threads, random_graph):
        expected = core_decomposition(random_graph)
        got = pkc_core_decomposition(random_graph, SimulatedPool(threads=threads))
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("threads", [1, 3, 8])
    def test_park_matches_bz(self, threads, random_graph):
        expected = core_decomposition(random_graph)
        got = park_core_decomposition(random_graph, SimulatedPool(threads=threads))
        assert np.array_equal(got, expected)

    def test_pkc_empty(self):
        assert pkc_core_decomposition(Graph.empty(0), SimulatedPool()).size == 0

    def test_park_empty(self):
        assert park_core_decomposition(Graph.empty(0), SimulatedPool()).size == 0

    def test_pkc_isolated(self):
        g = Graph.from_edges([(0, 1)], num_vertices=3)
        got = pkc_core_decomposition(g, SimulatedPool(threads=2))
        assert np.array_equal(got, [1, 1, 0])

    def test_park_scans_cost_more_than_pkc(self):
        g = barabasi_albert(200, 3, seed=0)
        pool_pkc = SimulatedPool(threads=4)
        pool_park = SimulatedPool(threads=4)
        pkc_core_decomposition(g, pool_pkc)
        park_core_decomposition(g, pool_park)
        assert pool_park.clock > pool_pkc.clock


class TestVertexRank:
    def test_rank_is_coreness_then_id(self, random_graph):
        coreness = core_decomposition(random_graph)
        res = compute_vertex_rank(random_graph, coreness, SimulatedPool(threads=3))
        n = random_graph.num_vertices
        expected_order = np.lexsort((np.arange(n), coreness))
        expected_rank = np.empty(n, dtype=np.int64)
        expected_rank[expected_order] = np.arange(n)
        assert np.array_equal(res.rank, expected_rank)
        assert np.array_equal(res.vsort, expected_order)

    def test_shells_partition(self, random_graph):
        coreness = core_decomposition(random_graph)
        res = compute_vertex_rank(random_graph, coreness, SimulatedPool(threads=2))
        seen = np.concatenate([s for s in res.shells if s.size])
        assert sorted(seen.tolist()) == list(range(random_graph.num_vertices))
        for k, shell in enumerate(res.shells):
            assert np.all(coreness[shell] == k)
            # ascending id inside each shell (Algorithm 1's concat order)
            assert np.all(np.diff(shell) > 0) or shell.size <= 1

    @pytest.mark.parametrize("threads", [1, 2, 4, 16])
    def test_thread_count_invariance(self, threads):
        g = erdos_renyi(60, 0.1, seed=0)
        coreness = core_decomposition(g)
        res = compute_vertex_rank(g, coreness, SimulatedPool(threads=threads))
        base = compute_vertex_rank(g, coreness, SimulatedPool(threads=1))
        assert np.array_equal(res.rank, base.rank)

    def test_kmax_property(self):
        g = complete_graph(4)
        res = compute_vertex_rank(g, core_decomposition(g), SimulatedPool())
        assert res.kmax == 3
