"""Tests for the k-truss extension (decomposition + hierarchy)."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.generators import (
    complete_graph,
    erdos_renyi,
    powerlaw_cluster,
)
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool
from repro.truss.decomposition import EdgeIndex, edge_supports, truss_decomposition
from repro.truss.hierarchy import TrussHierarchy, truss_hierarchy


def nx_truss_edges(graph: Graph, k: int) -> set[tuple[int, int]]:
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from(graph.edges())
    return {tuple(sorted(e)) for e in nx.k_truss(g, k).edges()}


class TestEdgeIndex:
    def test_ids_cover_edges(self, triangle):
        index = EdgeIndex(triangle)
        assert len(index) == 3
        assert index.id_of(1, 0) == index.id_of(0, 1)

    def test_get_missing(self, triangle):
        assert EdgeIndex(triangle).get(0, 0) is None


class TestSupports:
    def test_triangle(self, triangle):
        assert np.array_equal(edge_supports(triangle), [1, 1, 1])

    def test_k5(self):
        supports = edge_supports(complete_graph(5))
        assert np.all(supports == 3)

    def test_path(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert np.array_equal(edge_supports(g), [0, 0])


class TestTrussDecomposition:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx_all_k(self, seed):
        g = powerlaw_cluster(50, 3, 0.5, seed=seed)
        index = EdgeIndex(g)
        trussness = truss_decomposition(g, index)
        for k in range(2, int(trussness.max()) + 1):
            mine = {
                tuple(int(x) for x in index.edges[e])
                for e in np.flatnonzero(trussness >= k)
            }
            assert mine == nx_truss_edges(g, k), (seed, k)

    def test_complete_graph(self):
        assert set(truss_decomposition(complete_graph(6)).tolist()) == {6}

    def test_triangle_free(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        assert set(truss_decomposition(g).tolist()) == {2}

    def test_empty(self):
        assert truss_decomposition(Graph.empty(3)).size == 0

    def test_charges_pool(self, triangle):
        pool = SimulatedPool()
        truss_decomposition(triangle, pool=pool)
        assert pool.clock > 0


def definitional_hierarchy(graph: Graph, index, trussness):
    """Oracle: per-level triangle-connectivity classes by BFS."""
    m = len(index)
    tmax = int(trussness.max()) if m else 0
    # adjacency between edges through valid triangles at >= k
    from repro.truss.hierarchy import _triangle_companions

    nodes = []
    for k in range(tmax, 1, -1):
        members = set(int(e) for e in np.flatnonzero(trussness >= k))
        seen: set[int] = set()
        for start in sorted(members):
            if start in seen:
                continue
            comp = {start}
            seen.add(start)
            stack = [start]
            while stack:
                e = stack.pop()
                neighbors = []
                for e1, e2 in _triangle_companions(graph, index, e):
                    if trussness[e1] >= k and trussness[e2] >= k:
                        neighbors += [e1, e2]
                if k == 2:
                    u, v = (int(x) for x in index.edges[e])
                    for x in (u, v):
                        for w in graph.neighbors(x):
                            other = index.get(x, int(w))
                            if other is not None:
                                neighbors.append(other)
                for other in neighbors:
                    if other in members and other not in seen:
                        seen.add(other)
                        comp.add(other)
                        stack.append(other)
            shell = frozenset(e for e in comp if trussness[e] == k)
            if shell:
                nodes.append((k, shell))
    return sorted(nodes)


class TestTrussHierarchy:
    @pytest.mark.parametrize("threads", [1, 3, 6])
    def test_nodes_match_definitional_oracle(self, threads):
        g = powerlaw_cluster(45, 3, 0.6, seed=2)
        index = EdgeIndex(g)
        trussness = truss_decomposition(g, index)
        th = truss_hierarchy(g, trussness, SimulatedPool(threads=threads), index=index)
        th.validate(g, trussness)
        mine = sorted(
            (int(th.node_trussness[i]), frozenset(int(e) for e in th.edges_of(i)))
            for i in range(th.num_nodes)
        )
        assert mine == definitional_hierarchy(g, index, trussness)

    def test_thread_invariance(self):
        g = erdos_renyi(40, 0.15, seed=3)
        trussness = truss_decomposition(g)
        forms = [
            truss_hierarchy(g, trussness, SimulatedPool(threads=p)).canonical_form()
            for p in (1, 4)
        ]
        assert forms[0] == forms[1]

    def test_reconstruct_truss_is_k_truss_component(self):
        g = powerlaw_cluster(45, 3, 0.6, seed=5)
        index = EdgeIndex(g)
        trussness = truss_decomposition(g, index)
        th = truss_hierarchy(g, trussness, SimulatedPool(threads=2), index=index)
        for node in range(th.num_nodes):
            k = int(th.node_trussness[node])
            edges = th.reconstruct_truss(node)
            assert np.all(trussness[edges] >= k)
            own = th.edges_of(node)
            assert np.all(trussness[own] == k)

    def test_two_cliques_give_two_deep_nodes(self):
        edges = list(complete_graph(5).edges())
        edges += [(u + 5, v + 5) for u, v in complete_graph(5).edges()]
        edges += [(0, 5)]  # bridge, trussness 2
        g = Graph.from_edges(edges)
        trussness = truss_decomposition(g)
        th = truss_hierarchy(g, trussness, SimulatedPool())
        ks = sorted(int(k) for k in th.node_trussness)
        assert ks == [2, 5, 5]
        # both K5 nodes hang under the level-2 root
        root = [i for i in range(3) if th.node_trussness[i] == 2][0]
        assert sorted(th.children[root]) == [
            i for i in range(3) if i != root
        ]

    def test_nested_trusses(self):
        # K6 with a pendant triangle fan: inner 6-truss under outer levels
        edges = list(complete_graph(6).edges())
        edges += [(0, 6), (1, 6)]  # vertex 6 closes one triangle (truss 3)
        g = Graph.from_edges(edges)
        trussness = truss_decomposition(g)
        th = truss_hierarchy(g, trussness, SimulatedPool(threads=2))
        th.validate(g, trussness)
        ks = sorted(int(k) for k in th.node_trussness)
        assert ks[-1] == 6
        assert 3 in ks

    def test_empty_graph(self):
        th = truss_hierarchy(Graph.empty(2), pool=SimulatedPool())
        assert th.num_nodes == 0
