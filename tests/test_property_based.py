"""Property-based tests (hypothesis) over random edge lists.

These drive arbitrary small graphs through the full stack and assert
the structural invariants the paper's definitions promise, plus
cross-implementation agreement between independent code paths.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import core_decomposition
from repro.core.lcps import lcps_build_hcd
from repro.core.local_search import rc_build_hcd
from repro.core.phcd import phcd_build_hcd
from repro.core.pkc import pkc_core_decomposition
from repro.graph.graph import Graph
from repro.graph.properties import subgraph_primary_values
from repro.parallel.accumulate import tree_accumulate
from repro.parallel.scheduler import SimulatedPool
from repro.search.bks import bks_search
from repro.search.pbks import pbks_search
from repro.unionfind.pivot import PivotUnionFind
from repro.unionfind.sequential import UnionFind
from repro.unionfind.waitfree import SimulatedWaitFreeUnionFind

MAX_N = 24

edge_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=MAX_N - 1),
        st.integers(min_value=0, max_value=MAX_N - 1),
    ),
    max_size=70,
)


def build(edges) -> Graph:
    return Graph.from_edges(edges, num_vertices=MAX_N)


@settings(max_examples=60, deadline=None)
@given(edges=edge_lists)
def test_coreness_invariants(edges):
    """Min-degree and maximality invariants of core decomposition."""
    g = build(edges)
    coreness = core_decomposition(g)
    # 1. inside the k-core set of k = c(v), v has >= k neighbors
    for v in range(g.num_vertices):
        k = int(coreness[v])
        inside = sum(1 for u in g.neighbors(v) if coreness[u] >= k)
        assert inside >= k
    # 2. maximality: v has < k+1 neighbors of coreness >= k+1 ... weaker
    #    form: the (k+1)-core set restricted subgraph cannot contain v
    #    with degree >= k+1 unless c(v) >= k+1 (checked via recompute)
    assert np.array_equal(coreness, core_decomposition(g))


@settings(max_examples=40, deadline=None)
@given(edges=edge_lists, threads=st.integers(min_value=1, max_value=6))
def test_pkc_equals_bz(edges, threads):
    g = build(edges)
    expected = core_decomposition(g)
    got = pkc_core_decomposition(g, SimulatedPool(threads=threads))
    assert np.array_equal(got, expected)


@settings(max_examples=40, deadline=None)
@given(edges=edge_lists, threads=st.integers(min_value=1, max_value=6))
def test_hcd_constructions_agree(edges, threads):
    """LCPS, PHCD, and RC build the same, valid hierarchy."""
    g = build(edges)
    coreness = core_decomposition(g)
    lcps = lcps_build_hcd(g, coreness)
    lcps.validate(g, coreness)
    phcd = phcd_build_hcd(g, coreness, SimulatedPool(threads=threads))
    assert phcd.equivalent_to(lcps)
    rc = rc_build_hcd(g, coreness, SimulatedPool(threads=threads))
    assert rc.equivalent_to(lcps)


@settings(max_examples=30, deadline=None)
@given(edges=edge_lists)
def test_hcd_partitions_vertices(edges):
    g = build(edges)
    coreness = core_decomposition(g)
    hcd = lcps_build_hcd(g, coreness)
    seen: set[int] = set()
    for node in range(hcd.num_nodes):
        verts = set(int(v) for v in hcd.vertices_of(node))
        assert not (verts & seen)
        seen |= verts
        k = int(hcd.node_coreness[node])
        assert all(coreness[v] == k for v in verts)
        pa = int(hcd.parent[node])
        if pa >= 0:
            assert int(hcd.node_coreness[pa]) < k
    assert seen == set(range(g.num_vertices))


@settings(max_examples=30, deadline=None)
@given(
    edges=edge_lists,
    metric=st.sampled_from(
        ["average_degree", "conductance", "modularity", "clustering_coefficient"]
    ),
    threads=st.integers(min_value=1, max_value=6),
)
def test_bks_equals_pbks(edges, metric, threads):
    g = build(edges)
    coreness = core_decomposition(g)
    hcd = lcps_build_hcd(g, coreness)
    serial = bks_search(g, coreness, hcd, metric)
    parallel = pbks_search(g, coreness, hcd, metric, SimulatedPool(threads=threads))
    assert np.allclose(serial.scores, parallel.scores)
    assert np.allclose(serial.values, parallel.values)


@settings(max_examples=25, deadline=None)
@given(edges=edge_lists)
def test_pbks_values_match_definitions(edges):
    """Accumulated per-node values equal direct subgraph computation."""
    g = build(edges)
    coreness = core_decomposition(g)
    hcd = lcps_build_hcd(g, coreness)
    result = pbks_search(
        g, coreness, hcd, "clustering_coefficient", SimulatedPool(threads=3)
    )
    for node in range(hcd.num_nodes):
        members = hcd.reconstruct_core(node)
        direct = subgraph_primary_values(g, members)
        got = result.node_values(node)
        assert got.n == direct["n"]
        assert got.m == direct["m"]
        assert got.b == direct["b"]
        assert got.triangles == direct["triangles"]


@settings(max_examples=50, deadline=None)
@given(
    edges=edge_lists,
    failure_rate=st.floats(min_value=0.0, max_value=0.7),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_unionfind_engines_agree(edges, failure_rate, seed):
    """Sequential, pivot, and failing wait-free UF give one connectivity."""
    g = build(edges)
    n = g.num_vertices
    ranks = np.arange(n, dtype=np.int64)
    plain = UnionFind(n)
    piv = PivotUnionFind(ranks)
    wf = SimulatedWaitFreeUnionFind(ranks, failure_rate=failure_rate, seed=seed)
    for u, v in g.edges():
        plain.union(u, v)
        piv.union(u, v)
        wf.union(u, v)
    for x in range(n):
        for y in range(x + 1, x + 5):
            if y >= n:
                break
            expected = plain.same_set(x, y)
            assert piv.same_set(x, y) == expected
            assert wf.same_set(x, y) == expected
        assert piv.get_pivot(x) == wf.get_pivot(x)


@settings(max_examples=40, deadline=None)
@given(
    parents_seed=st.integers(min_value=0, max_value=999),
    size=st.integers(min_value=1, max_value=20),
    threads=st.integers(min_value=1, max_value=5),
)
def test_tree_accumulate_matches_subtree_sums(parents_seed, size, threads):
    rng = np.random.default_rng(parents_seed)
    # random forest: parent of i is in [0, i) or none
    parents = np.array(
        [-1 if i == 0 or rng.random() < 0.25 else int(rng.integers(0, i)) for i in range(size)],
        dtype=np.int64,
    )
    values = rng.random((size, 2))
    got = tree_accumulate(SimulatedPool(threads=threads), parents, values)
    # oracle
    children: list[list[int]] = [[] for _ in range(size)]
    for i, p in enumerate(parents):
        if p >= 0:
            children[p].append(i)

    def subtree(i):
        total = values[i].copy()
        for ch in children[i]:
            total += subtree(ch)
        return total

    expected = np.stack([subtree(i) for i in range(size)])
    assert np.allclose(got, expected)


@settings(max_examples=30, deadline=None)
@given(edges=edge_lists)
def test_monotone_primary_values_up_the_hierarchy(edges):
    """Parents' cores contain children's: n, m, triangles monotone."""
    g = build(edges)
    coreness = core_decomposition(g)
    hcd = lcps_build_hcd(g, coreness)
    result = pbks_search(
        g, coreness, hcd, "clustering_coefficient", SimulatedPool()
    )
    for node in range(hcd.num_nodes):
        pa = int(hcd.parent[node])
        if pa < 0:
            continue
        for col in (0, 1, 3, 4):  # n, m, triangles, triplets grow
            assert result.values[pa][col] >= result.values[node][col]
