"""Tests for community scoring metrics and the registry."""

import pytest

from repro.errors import UnknownMetricError
from repro.search.metrics import (
    get_metric,
    metric_names,
    register_metric,
    type_a_metrics,
    type_b_metrics,
)
from repro.search.primary_values import GraphTotals, PrimaryValues

TOTALS = GraphTotals(n=100, m=500)


def pv(**kwargs) -> PrimaryValues:
    return PrimaryValues(**kwargs)


class TestFormulas:
    def test_average_degree(self):
        m = get_metric("average_degree")
        assert m(pv(n=10, m=25), TOTALS) == pytest.approx(5.0)

    def test_average_degree_empty(self):
        assert get_metric("average_degree")(pv(), TOTALS) == 0.0

    def test_internal_density(self):
        m = get_metric("internal_density")
        # K4: 6 edges over C(4,2)=6 -> density 1
        assert m(pv(n=4, m=6), TOTALS) == pytest.approx(1.0)

    def test_internal_density_singleton(self):
        assert get_metric("internal_density")(pv(n=1), TOTALS) == 0.0

    def test_cut_ratio(self):
        m = get_metric("cut_ratio")
        # n(S)=10, outside=90, b=90 -> 1 - 90/900 = 0.9
        assert m(pv(n=10, b=90), TOTALS) == pytest.approx(0.9)

    def test_cut_ratio_whole_graph(self):
        m = get_metric("cut_ratio")
        assert m(pv(n=100, b=0), TOTALS) == 1.0

    def test_conductance(self):
        m = get_metric("conductance")
        # b=10, 2m=40 -> 1 - 10/50 = 0.8
        assert m(pv(m=20, b=10), TOTALS) == pytest.approx(0.8)

    def test_conductance_isolated(self):
        assert get_metric("conductance")(pv(), TOTALS) == 1.0

    def test_modularity(self):
        m = get_metric("modularity")
        # m(S)=100 of 500, degrees 2*100+50 over 1000
        expected = 100 / 500 - (250 / 1000) ** 2
        assert m(pv(m=100, b=50), TOTALS) == pytest.approx(expected)

    def test_modularity_empty_graph(self):
        assert get_metric("modularity")(pv(m=1), GraphTotals(n=0, m=0)) == 0.0

    def test_clustering_coefficient(self):
        m = get_metric("clustering_coefficient")
        # K3: 1 triangle, 3 triplets -> 3*1/3 = 1
        assert m(pv(triangles=1, triplets=3), TOTALS) == pytest.approx(1.0)

    def test_clustering_coefficient_no_triplets(self):
        assert get_metric("clustering_coefficient")(pv(), TOTALS) == 0.0


class TestRegistry:
    def test_paper_metrics_present(self):
        names = metric_names()
        for expected in (
            "average_degree",
            "internal_density",
            "cut_ratio",
            "conductance",
            "modularity",
            "clustering_coefficient",
        ):
            assert expected in names

    def test_type_split(self):
        a_names = {m.name for m in type_a_metrics()}
        b_names = {m.name for m in type_b_metrics()}
        assert "average_degree" in a_names
        assert "clustering_coefficient" in b_names
        assert not (a_names & b_names)

    def test_unknown_metric(self):
        with pytest.raises(UnknownMetricError):
            get_metric("nope")

    def test_register_custom_metric(self):
        metric = register_metric(
            "test_only_density_per_boundary",
            "A",
            lambda v, t: v.m / (v.b + 1.0),
        )
        try:
            assert get_metric(metric.name)(pv(m=10, b=4), TOTALS) == 2.0
        finally:
            # keep the global registry clean for other tests
            from repro.search import metrics as mod

            del mod._REGISTRY[metric.name]

    def test_register_invalid_kind(self):
        with pytest.raises(ValueError):
            register_metric("bad", "C", lambda v, t: 0.0)

    def test_metric_callable(self):
        m = get_metric("average_degree")
        assert m(pv(n=2, m=1), TOTALS) == 1.0


class TestPrimaryValues:
    def test_addition(self):
        a = pv(n=1, m=2, b=3, triangles=4, triplets=5)
        b = pv(n=10, m=20, b=30, triangles=40, triplets=50)
        total = a + b
        assert total.as_tuple() == (11, 22, 33, 44, 55)

    def test_graph_totals_of(self, triangle):
        totals = GraphTotals.of(triangle)
        assert totals.n == 3
        assert totals.m == 3


class TestSurveyMetrics:
    def test_separability(self):
        m = get_metric("separability")
        assert m(pv(m=20, b=4), TOTALS) == 5.0
        assert m(pv(m=20, b=0), TOTALS) == float("inf")
        assert m(pv(m=0, b=0), TOTALS) == 0.0

    def test_expansion(self):
        m = get_metric("expansion")
        assert m(pv(n=10, b=5), TOTALS) == pytest.approx(0.5)
        assert m(pv(), TOTALS) == 0.0

    def test_triangle_participation(self):
        m = get_metric("triangle_participation")
        assert m(pv(m=3, triangles=1), TOTALS) == pytest.approx(1 / 3)
        assert m(pv(), TOTALS) == 0.0

    def test_types(self):
        assert get_metric("separability").kind == "A"
        assert get_metric("expansion").kind == "A"
        assert get_metric("triangle_participation").kind == "B"


class TestCombinedMetrics:
    def test_weighted_combination(self):
        from repro.search.metrics import _REGISTRY, combine_metrics

        metric = combine_metrics(
            "test_combo", {"average_degree": 2.0, "conductance": 1.0}
        )
        try:
            values = pv(n=10, m=25, b=0)
            expected = 2.0 * 5.0 + 1.0 * 1.0
            assert metric(values, TOTALS) == pytest.approx(expected)
            assert get_metric("test_combo") is metric
            assert metric.kind == "A"
        finally:
            del _REGISTRY["test_combo"]

    def test_type_b_propagates(self):
        from repro.search.metrics import combine_metrics

        metric = combine_metrics(
            "test_combo_b",
            {"average_degree": 1.0, "clustering_coefficient": 1.0},
            register=False,
        )
        assert metric.kind == "B"

    def test_bks_pbks_agree_on_combined(self):
        import numpy as np

        from repro.core.decomposition import core_decomposition
        from repro.core.lcps import lcps_build_hcd
        from repro.graph.generators import powerlaw_cluster
        from repro.parallel.scheduler import SimulatedPool
        from repro.search.bks import bks_search
        from repro.search.metrics import combine_metrics
        from repro.search.pbks import pbks_search

        g = powerlaw_cluster(80, 3, 0.4, seed=9)
        coreness = core_decomposition(g)
        hcd = lcps_build_hcd(g, coreness)
        metric = combine_metrics(
            "test_combo_search",
            {"conductance": 1.0, "clustering_coefficient": 0.5},
            register=False,
        )
        serial = bks_search(g, coreness, hcd, metric)
        parallel = pbks_search(g, coreness, hcd, metric, SimulatedPool(threads=4))
        assert np.allclose(serial.scores, parallel.scores)

    def test_empty_weights_rejected(self):
        from repro.search.metrics import combine_metrics

        with pytest.raises(ValueError):
            combine_metrics("empty", {})
