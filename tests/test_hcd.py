"""Tests for the HCD index and builder."""

import numpy as np
import pytest

from repro.core.decomposition import core_decomposition
from repro.core.hcd import HCD, HCDBuilder
from repro.core.lcps import lcps_build_hcd
from repro.errors import HierarchyError
from repro.graph.graph import Graph


@pytest.fixture
def small_hcd(paper_like_graph):
    coreness = core_decomposition(paper_like_graph)
    return lcps_build_hcd(paper_like_graph, coreness), coreness


class TestBuilder:
    def test_basic_build(self, triangle):
        b = HCDBuilder(3)
        node = b.new_node(2)
        for v in range(3):
            b.add_vertex(node, v)
        hcd = b.build()
        assert hcd.num_nodes == 1
        assert np.array_equal(hcd.vertices_of(0), [0, 1, 2])

    def test_unplaced_vertex_rejected(self):
        b = HCDBuilder(2)
        node = b.new_node(1)
        b.add_vertex(node, 0)
        with pytest.raises(HierarchyError):
            b.build()

    def test_parent_links(self):
        b = HCDBuilder(2)
        a = b.new_node(1)
        c = b.new_node(2)
        b.add_vertex(a, 0)
        b.add_vertex(c, 1)
        b.set_parent(c, a)
        hcd = b.build()
        assert hcd.parent[c] == a
        assert hcd.children[a] == [c]
        assert hcd.roots() == [a]

    def test_coreness_of(self):
        b = HCDBuilder(1)
        node = b.new_node(7)
        assert b.coreness_of(node) == 7


class TestAccessors:
    def test_counts(self, small_hcd, paper_like_graph):
        hcd, _ = small_hcd
        assert hcd.num_vertices == paper_like_graph.num_vertices
        assert hcd.num_nodes >= 4  # 4-core, two 3-cores, 2-core

    def test_kmax(self, small_hcd):
        hcd, coreness = small_hcd
        assert hcd.kmax == int(coreness.max())

    def test_tid_consistent(self, small_hcd):
        hcd, _ = small_hcd
        for node in range(hcd.num_nodes):
            for v in hcd.vertices_of(node):
                assert hcd.node_of_vertex(int(v)) == node

    def test_traversal_orders(self, small_hcd):
        hcd, _ = small_hcd
        bottom_up = hcd.nodes_bottom_up()
        top_down = hcd.nodes_top_down()
        assert sorted(bottom_up) == list(range(hcd.num_nodes))
        assert bottom_up == list(reversed(top_down))
        depths = hcd.depths()
        # children always precede parents in bottom-up order
        position = {node: i for i, node in enumerate(bottom_up)}
        for node in range(hcd.num_nodes):
            pa = int(hcd.parent[node])
            if pa >= 0:
                assert position[node] < position[pa]
                assert depths[node] == depths[pa] + 1

    def test_subtree_nodes(self, small_hcd):
        hcd, _ = small_hcd
        root = hcd.roots()[0]
        assert sorted(hcd.subtree_nodes(root)) == sorted(
            n for n in range(hcd.num_nodes)
            if root in _ancestors_of(hcd, n) or n == root
        )

    def test_reconstruct_core_is_k_core(self, small_hcd, paper_like_graph):
        hcd, coreness = small_hcd
        for node in range(hcd.num_nodes):
            members = hcd.reconstruct_core(node)
            k = int(hcd.node_coreness[node])
            sub, _ = paper_like_graph.induced_subgraph(members)
            assert int(sub.degrees().min()) >= k  # min degree property
            assert len(np.unique(sub.connected_components())) == 1

    def test_stats(self, small_hcd):
        hcd, _ = small_hcd
        stats = hcd.stats()
        assert stats.num_nodes == hcd.num_nodes
        assert stats.kmax == hcd.kmax
        assert stats.largest_node >= 1

    def test_repr(self, small_hcd):
        hcd, _ = small_hcd
        assert "HCD(" in repr(hcd)


def _ancestors_of(hcd: HCD, node: int) -> set[int]:
    out = set()
    cur = int(hcd.parent[node])
    while cur >= 0:
        out.add(cur)
        cur = int(hcd.parent[cur])
    return out


class TestCanonicalForm:
    def test_equivalent_under_renumbering(self, small_hcd):
        hcd, _ = small_hcd
        # rebuild with node ids permuted
        order = list(reversed(range(hcd.num_nodes)))
        remap = {old: new for new, old in enumerate(order)}
        b = HCDBuilder(hcd.num_vertices)
        for old in order:
            b.new_node(int(hcd.node_coreness[old]))
        for old in order:
            for v in hcd.vertices_of(old):
                b.add_vertex(remap[old], int(v))
            pa = int(hcd.parent[old])
            if pa >= 0:
                b.set_parent(remap[old], remap[pa])
        other = b.build()
        assert hcd.equivalent_to(other)

    def test_not_equivalent_to_different(self, small_hcd, triangle):
        hcd, _ = small_hcd
        b = HCDBuilder(3)
        node = b.new_node(2)
        for v in range(3):
            b.add_vertex(node, v)
        assert not hcd.equivalent_to(b.build())


class TestValidate:
    def test_valid_passes(self, small_hcd, paper_like_graph):
        hcd, coreness = small_hcd
        hcd.validate(paper_like_graph, coreness)  # should not raise

    def test_detects_wrong_coreness(self, small_hcd, paper_like_graph):
        hcd, coreness = small_hcd
        wrong = coreness.copy()
        wrong[0] += 1
        with pytest.raises(HierarchyError):
            hcd.validate(paper_like_graph, wrong)

    def test_detects_missing_vertex(self, triangle):
        b = HCDBuilder(3)
        node = b.new_node(2)
        b.add_vertex(node, 0)
        b.add_vertex(node, 1)
        b.tid[2] = node  # forged tid without membership
        hcd = b.build()
        with pytest.raises(HierarchyError):
            hcd.validate(triangle, np.array([2, 2, 2]))

    def test_detects_duplicate_vertex(self, triangle):
        b = HCDBuilder(3)
        a = b.new_node(2)
        for v in range(3):
            b.add_vertex(a, v)
        c = b.new_node(2)
        b.add_vertex(c, 0)  # vertex 0 in two nodes
        b.tid[0] = a
        with pytest.raises(HierarchyError):
            b.build().validate(triangle, np.array([2, 2, 2]))

    def test_detects_bad_parent_order(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        coreness = core_decomposition(g)  # [2,2,2,1]
        b = HCDBuilder(4)
        hi = b.new_node(2)
        lo = b.new_node(1)
        for v in range(3):
            b.add_vertex(hi, v)
        b.add_vertex(lo, 3)
        b.set_parent(lo, hi)  # inverted: parent coreness must be smaller
        with pytest.raises(HierarchyError):
            b.build().validate(g, coreness)

    def test_detects_non_maximal_core(self):
        # two disjoint triangles in one forged tree node
        edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        g = Graph.from_edges(edges)
        coreness = core_decomposition(g)
        b = HCDBuilder(6)
        node = b.new_node(2)
        for v in range(6):
            b.add_vertex(node, v)
        with pytest.raises(HierarchyError):
            b.build().validate(g, coreness)
