"""Tests for SimTSan: vector clocks, race detector, lint, kernel gate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.parallel.atomics import AtomicArray, AtomicCounter
from repro.parallel.context import CACHELINE_WORDS
from repro.parallel.scheduler import SimulatedPool
from repro.sanitizer import (
    KERNELS,
    RaceDetector,
    VectorClock,
    lint_source,
    run_all_kernels,
    run_kernel,
    run_racy_kernel,
    selftest,
)
from repro.sanitizer.lint import lint_paths


class TestVectorClock:
    def test_fresh_clocks_equal(self):
        assert VectorClock(4) == VectorClock(4)

    def test_tick_orders(self):
        a = VectorClock(2)
        b = a.copy().tick(0)
        assert a.happens_before(b)
        assert not b.happens_before(a)

    def test_sibling_epochs_concurrent(self):
        main = VectorClock(3)
        e0 = main.copy().tick(0)
        e1 = main.copy().tick(1)
        assert e0.concurrent_with(e1)
        assert e1.concurrent_with(e0)

    def test_barrier_join_orders_next_region(self):
        main = VectorClock(2)
        epochs = [main.copy().tick(t) for t in range(2)]
        for e in epochs:
            main.join(e)
        nxt = main.copy().tick(0)
        for e in epochs:
            assert e.happens_before(nxt)

    def test_join_is_componentwise_max(self):
        a = VectorClock(3).tick(0).tick(0)
        b = VectorClock(3).tick(1)
        a.join(b)
        assert a[0] == 2 and a[1] == 1 and a[2] == 0


class TestDetector:
    def _run(self, worker, threads=4, items=16, label="region"):
        pool = SimulatedPool(threads=threads)
        detector = RaceDetector()
        with detector.watch(pool):
            pool.parallel_for(list(range(items)), worker, label=label)
        return detector

    def test_plain_write_write_is_race(self):
        det = self._run(lambda i, ctx: ctx.write(("cell", 0)))
        assert det.races
        assert det.races[0].location == ("cell", 0)

    def test_plain_read_write_is_race(self):
        def worker(i, ctx):
            if i % 2:
                ctx.read(("cell", 0))
            else:
                ctx.write(("cell", 0))

        assert self._run(worker).races

    def test_plain_read_read_is_not_race(self):
        det = self._run(lambda i, ctx: ctx.read(("cell", 0)))
        assert not det.races

    def test_atomic_traffic_is_not_race(self):
        arr = AtomicArray(4, name="a")
        det = self._run(lambda i, ctx: arr.add(ctx, 0, 1))
        assert not det.races

    def test_atomic_write_vs_plain_read_is_race(self):
        arr = AtomicArray(4, name="a")

        def worker(i, ctx):
            if i % 2:
                arr.store(ctx, 0, i)
            else:
                ctx.read(("a", 0))  # bare .data read of the same word

        det = self._run(worker)
        assert det.races
        (race,) = det.races[:1]
        assert "atomic write" in (race.access_a + race.access_b)

    def test_disjoint_plain_writes_are_not_race(self):
        det = self._run(lambda i, ctx: ctx.write(("cell", i)))
        assert not det.races

    def test_same_thread_accesses_are_not_race(self):
        det = self._run(lambda i, ctx: ctx.write(("cell", 0)), threads=1)
        assert not det.races

    def test_cross_region_accesses_are_ordered(self):
        # thread 1 writes the cell in region A, thread 0 in region B:
        # the barrier between regions is a happens-before edge.
        pool = SimulatedPool(threads=2)
        detector = RaceDetector()
        with detector.watch(pool):
            pool.parallel_for(
                [0, 1],
                lambda i, ctx: ctx.write(("x",)) if i == 1 else None,
                label="A",
            )
            pool.parallel_for(
                [0, 1],
                lambda i, ctx: ctx.write(("x",)) if i == 0 else None,
                label="B",
            )
        assert not detector.races

    def test_race_deduplicated_per_location_pair(self):
        det = self._run(lambda i, ctx: ctx.write(("cell", 0)), threads=2)
        assert len(det.races) == 1

    def test_serial_region_never_races(self):
        pool = SimulatedPool(threads=1)
        detector = RaceDetector()
        with detector.watch(pool):
            with pool.serial_region("serial") as ctx:
                ctx.write(("cell", 0))
                ctx.read(("cell", 0))
        assert not detector.races
        assert detector.regions_checked == 1

    def test_detach_stops_recording(self):
        pool = SimulatedPool(threads=2)
        detector = RaceDetector()
        detector.attach(pool)
        detector.detach()
        pool.parallel_for(
            [0, 1], lambda i, ctx: ctx.write(("cell", 0)), label="r"
        )
        assert not detector.races
        assert pool.observer is None

    def test_recording_does_not_change_clock(self):
        def worker(i, ctx):
            ctx.charge(1)
            ctx.write(("w", i))
            ctx.read(("r", i))

        plain = SimulatedPool(threads=3)
        plain.parallel_for(list(range(12)), worker, label="r")
        watched = SimulatedPool(threads=3)
        with RaceDetector().watch(watched):
            watched.parallel_for(list(range(12)), worker, label="r")
        assert watched.clock == plain.clock


class TestSeededBug:
    def test_selftest_passes(self):
        ok, message = selftest(threads=4)
        assert ok, message

    def test_report_carries_full_context(self):
        detector = run_racy_kernel(threads=4)
        races = [r for r in detector.races if r.region == "selftest:racy_sum"]
        assert races
        report = races[0]
        # acceptance criterion: location key, region label, both threads
        assert report.location == ("racy_total", 0)
        assert report.region == "selftest:racy_sum"
        assert report.thread_a != report.thread_b
        text = str(report)
        assert "racy_total" in text and "selftest:racy_sum" in text
        assert str(report.thread_a) in text and str(report.thread_b) in text

    def test_selftest_needs_two_threads(self):
        ok, _ = selftest(threads=1)
        assert not ok


class TestChargedLoads:
    def test_counter_load_is_charged_and_synchronized(self):
        pool = SimulatedPool(threads=2)
        counter = AtomicCounter(7, name="c")
        detector = RaceDetector()
        with detector.watch(pool):
            got = pool.parallel_for(
                [0, 1],
                lambda i, ctx: (
                    counter.load(ctx) if i else counter.fetch_add(ctx, 1)
                ),
                label="ctr",
            )
        assert not detector.races  # atomic read vs atomic RMW
        assert got[1] in (7, 8)  # sequential order: fetch_add ran first
        assert counter.value == 8  # post-region inspection

    def test_counter_load_charges_work(self):
        pool = SimulatedPool(threads=1)
        counter = AtomicCounter(0)
        with pool.serial_region() as ctx:
            counter.load(ctx)
        assert ctx.work == 1

    def test_array_add_returns_previous_value(self):
        pool = SimulatedPool(threads=1)
        arr = AtomicArray(2, name="a")
        with pool.serial_region() as ctx:
            assert arr.add(ctx, 0, 5) == 0
            assert arr.add(ctx, 0, -2) == 5
        assert arr.data[0] == 3

    def test_fetch_min(self):
        pool = SimulatedPool(threads=1)
        arr = AtomicArray(1, dtype=np.float64, name="m")
        arr.data[0] = 9.0
        with pool.serial_region() as ctx:
            assert arr.fetch_min(ctx, 0, 4.0) == 9.0
            assert arr.fetch_min(ctx, 0, 6.0) == 4.0  # no change
        assert arr.data[0] == 4.0

    def test_from_array_shares_buffer(self):
        backing = np.zeros(4, dtype=np.int64)
        arr = AtomicArray.from_array(backing, name="shared")
        pool = SimulatedPool(threads=1)
        with pool.serial_region() as ctx:
            arr.store(ctx, 2, 42)
        assert backing[2] == 42


class TestCachelineCoalescing:
    def test_adjacent_indices_share_location_key(self):
        arr = AtomicArray(4 * CACHELINE_WORDS, name="a")
        assert arr._key(0) == arr._key(CACHELINE_WORDS - 1)

    def test_line_apart_indices_do_not_share(self):
        arr = AtomicArray(4 * CACHELINE_WORDS, name="a")
        assert arr._key(0) != arr._key(CACHELINE_WORDS)

    def test_word_keys_are_exact(self):
        arr = AtomicArray(4 * CACHELINE_WORDS, name="a")
        assert arr._word(0) != arr._word(1)

    def test_false_sharing_contends_but_does_not_race(self):
        # two threads on adjacent words of one line: contention penalty
        # is charged, yet the detector stays quiet (different words)
        pool = SimulatedPool(threads=2)
        arr = AtomicArray(CACHELINE_WORDS, name="fs")
        detector = RaceDetector()
        with detector.watch(pool):
            pool.parallel_for(
                [0, 1], lambda i, ctx: arr.store(ctx, i, 1), label="fs"
            )
        assert not detector.races
        (region,) = pool.regions
        assert region.contention_penalty > 0

    def test_separate_lines_do_not_contend(self):
        pool = SimulatedPool(threads=2)
        arr = AtomicArray(2 * CACHELINE_WORDS, name="fs")
        pool.parallel_for(
            [0, CACHELINE_WORDS],
            lambda i, ctx: arr.store(ctx, i, 1),
            label="fs",
        )
        (region,) = pool.regions
        assert region.contention_penalty == 0


def _lint_codes(source: str) -> set[str]:
    return {f.code for f in lint_source(source)}


class TestLint:
    def test_mutating_call_on_captured_container(self):
        codes = _lint_codes(
            "shared = []\n"
            "def worker(v, ctx):\n"
            "    ctx.charge(1)\n"
            "    shared.append(v)\n"
            "pool.parallel_for(items, worker)\n"
        )
        assert "SAN102" in codes

    def test_non_item_derived_store_is_error(self):
        codes = _lint_codes(
            "out = {}\n"
            "k = 3\n"
            "def worker(v, ctx):\n"
            "    ctx.charge(1)\n"
            "    out[k] = v\n"
            "pool.parallel_for(items, worker)\n"
        )
        assert "SAN101" in codes

    def test_item_derived_store_is_warning(self):
        codes = _lint_codes(
            "import numpy as np\n"
            "out = np.zeros(10)\n"
            "def worker(v, ctx):\n"
            "    ctx.charge(1)\n"
            "    out[v] = 1\n"
            "pool.parallel_for(items, worker)\n"
        )
        assert "SAN201" in codes and "SAN101" not in codes

    def test_recorded_item_store_is_clean(self):
        codes = _lint_codes(
            "import numpy as np\n"
            "out = np.zeros(10)\n"
            "def worker(v, ctx):\n"
            "    ctx.write(('out', v))\n"
            "    out[v] = 1\n"
            "pool.parallel_for(items, worker)\n"
        )
        assert not codes

    def test_attribute_store_is_error(self):
        codes = _lint_codes(
            "def worker(v, ctx):\n"
            "    ctx.charge(1)\n"
            "    obj.field = v\n"
            "pool.parallel_for(items, worker)\n"
        )
        assert "SAN103" in codes

    def test_nonlocal_store_is_error(self):
        codes = _lint_codes(
            "def outer(pool, items):\n"
            "    total = 0\n"
            "    def worker(v, ctx):\n"
            "        nonlocal total\n"
            "        ctx.charge(1)\n"
            "        total += v\n"
            "    pool.parallel_for(items, worker)\n"
        )
        assert "SAN103" in codes

    def test_missing_ctx_call_is_warning(self):
        codes = _lint_codes(
            "def worker(v, ctx):\n"
            "    pass\n"
            "pool.parallel_for(items, worker)\n"
        )
        assert "SAN202" in codes

    def test_passing_ctx_to_helper_counts_as_accounting(self):
        codes = _lint_codes(
            "def worker(v, ctx):\n"
            "    helper(v, ctx)\n"
            "pool.parallel_for(items, worker)\n"
        )
        assert "SAN202" not in codes

    def test_thread_local_buffers_are_exempt(self):
        codes = _lint_codes(
            "bufs = [[] for _ in range(4)]\n"
            "def worker(v, ctx):\n"
            "    ctx.charge(1)\n"
            "    bufs[ctx.thread_id].append(v)\n"
            "pool.parallel_for(items, worker)\n"
        )
        assert not codes

    def test_atomic_wrappers_are_exempt(self):
        codes = _lint_codes(
            "out = AtomicArray(8, name='out')\n"
            "def worker(v, ctx):\n"
            "    out.add(ctx, v, 1)\n"
            "pool.parallel_for(items, worker)\n"
        )
        assert not codes

    def test_atomic_annotation_is_exempt(self):
        codes = _lint_codes(
            "def run(pool, items, out: AtomicArray):\n"
            "    def worker(v, ctx):\n"
            "        out.add(ctx, v, 1)\n"
            "    pool.parallel_for(items, worker)\n"
        )
        assert not codes

    def test_raw_data_store_on_atomic_is_flagged(self):
        codes = _lint_codes(
            "out = AtomicArray(8, name='out')\n"
            "k = 2\n"
            "def worker(v, ctx):\n"
            "    ctx.charge(1)\n"
            "    out.data[k] = v\n"
            "pool.parallel_for(items, worker)\n"
        )
        assert "SAN101" in codes

    def test_suppression_comment(self):
        codes = _lint_codes(
            "shared = []\n"
            "def worker(v, ctx):\n"
            "    ctx.charge(1)\n"
            "    shared.append(v)  # sani: ok - reason here\n"
            "pool.parallel_for(items, worker)\n"
        )
        assert not codes

    def test_lambda_worker(self):
        codes = _lint_codes(
            "shared = []\n"
            "pool.parallel_for(items, lambda v, ctx: shared.append(v))\n"
        )
        assert "SAN102" in codes

    def test_syntax_error_reported(self):
        assert {"SAN000"} == _lint_codes("def broken(:\n")

    def test_src_tree_is_clean_of_errors(self):
        errors = [
            f for f in lint_paths(["src"]) if f.severity == "error"
        ]
        assert not errors, "\n".join(str(f) for f in errors)


class TestDeadSuppressions:
    """SAN002: suppression markers that no analysis consumes."""

    _LIVE = (
        "shared = []\n"
        "def worker(v, ctx):\n"
        "    ctx.charge(1)\n"
        "    shared.append(v)  # sani: ok - seeded, lint flags this\n"
        "pool.parallel_for(items, worker)\n"
    )
    _DEAD = (
        "def plain(values):\n"
        "    total = 0\n"
        "    for v in values:\n"
        "        total += v  # sani: ok - nothing here needs excusing\n"
        "    return total\n"
    )

    def test_live_marker_not_flagged(self):
        from repro.sanitizer.lint import dead_suppressions

        assert dead_suppressions(self._LIVE) == []

    def test_dead_marker_flagged_with_line(self):
        from repro.sanitizer.lint import dead_suppressions

        (finding,) = dead_suppressions(self._DEAD, path="toy.py")
        assert finding.code == "SAN002"
        assert finding.severity == "warning"
        assert (finding.path, finding.line) == ("toy.py", 4)
        assert "suppresses nothing" in finding.message

    def test_bare_marker_left_to_san001(self):
        from repro.sanitizer.lint import dead_suppressions

        source = self._DEAD.replace(
            "# sani: ok - nothing here needs excusing", "# sani: ok"
        )
        assert dead_suppressions(source) == []
        assert "SAN001" in _lint_codes(source)

    def test_unused_prove_assumption_flagged(self):
        from repro.sanitizer.lint import dead_suppressions

        source = (
            "# prove: n >= 1\n"
            "def f(n):\n"
            "    return n\n"
        )
        (finding,) = dead_suppressions(source)
        assert finding.code == "SAN002" and finding.line == 1

    def test_used_lines_keep_markers_alive(self):
        from repro.sanitizer.lint import dead_suppressions

        source = (
            "# prove: n >= 1\n"
            "def f(n):\n"
            "    return n  # sani: ok - flow proved this store disjoint\n"
        )
        assert len(dead_suppressions(source)) == 2
        assert dead_suppressions(source, used_lines={1, 3}) == []

    def test_in_tree_prove_assumptions_are_consumed(self):
        # the committed # prove: markers must seed real environments
        from pathlib import Path

        from repro.sanitizer.lint import dead_suppressions
        from repro.sanitizer.prove import prove_kernels

        report = prove_kernels(["pkc"])
        path = Path("src/repro/core/pkc.py")
        used = {
            ln
            for p, ln in report.used_marker_lines
            if Path(p).resolve() == path.resolve()
        }
        assert used, "prove recorded no assumption lines for pkc"
        findings = dead_suppressions(
            path.read_text(encoding="utf-8"),
            path=str(path),
            used_lines=used,
        )
        assert findings == [], [str(f) for f in findings]


class TestKernelGate:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernel_is_race_free(self, name):
        report = run_kernel(name, threads=4)
        assert report.clean, "\n".join(str(r) for r in report.races)
        assert report.regions > 0

    def test_all_kernels_cover_required_set(self):
        # the acceptance list: PHCD, PKC, PBKS, parallel accumulate,
        # and both concurrent union-find variants
        names = set(KERNELS)
        for required in (
            "phcd",
            "pkc",
            "pbks",
            "accumulate",
            "unionfind_pivot",
            "unionfind_waitfree",
        ):
            assert required in names

    def test_run_all_kernels(self):
        reports = run_all_kernels(threads=2)
        assert len(reports) == len(KERNELS)
        assert all(r.clean for r in reports)

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            run_kernel("definitely_not_a_kernel")


class TestCli:
    def test_sanitize_selftest_exit_zero(self, capsys):
        assert cli_main(["sanitize", "--selftest"]) == 0
        assert "seeded race detected" in capsys.readouterr().out

    def test_sanitize_list(self, capsys):
        assert cli_main(["sanitize", "--list"]) == 0
        out = capsys.readouterr().out
        assert "phcd" in out and "unionfind_waitfree" in out

    def test_sanitize_single_kernel(self, capsys):
        assert cli_main(["sanitize", "--kernel", "pkc"]) == 0
        assert "pkc" in capsys.readouterr().out

    def test_sanitize_lint_failure_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "shared = []\n"
            "def worker(v, ctx):\n"
            "    ctx.charge(1)\n"
            "    shared.append(v)\n"
            "pool.parallel_for(items, worker)\n"
        )
        assert cli_main(["sanitize", "--lint", str(bad)]) == 1
        assert "SAN102" in capsys.readouterr().out
