"""Tests for densest-subgraph search, CoreApp, and maximum clique."""

import itertools

import numpy as np
import pytest

from repro.core.decomposition import core_decomposition
from repro.core.lcps import lcps_build_hcd
from repro.graph.generators import (
    complete_graph,
    erdos_renyi,
    powerlaw_cluster,
)
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool
from repro.search.clique import is_clique, maximum_clique
from repro.search.coreapp import coreapp_densest
from repro.search.densest import exact_densest, optd_densest, pbks_densest


def decomposed(graph):
    coreness = core_decomposition(graph)
    return coreness, lcps_build_hcd(graph, coreness)


def brute_force_densest_avg_degree(graph: Graph) -> float:
    """Max average degree over all non-empty subsets (tiny graphs only)."""
    best = 0.0
    n = graph.num_vertices
    for size in range(1, n + 1):
        for subset in itertools.combinations(range(n), size):
            sub, _ = graph.induced_subgraph(list(subset))
            best = max(best, sub.average_degree())
    return best


class TestPbksDensest:
    def test_matches_optd(self, random_graph):
        coreness, hcd = decomposed(random_graph)
        d_pbks = pbks_densest(random_graph, coreness, hcd, SimulatedPool(threads=4))
        d_optd = optd_densest(random_graph, coreness, hcd)
        assert d_pbks.average_degree == pytest.approx(d_optd.average_degree)
        assert np.array_equal(np.sort(d_pbks.members), np.sort(d_optd.members))

    def test_beats_or_matches_coreapp(self, random_graph):
        coreness, hcd = decomposed(random_graph)
        d_pbks = pbks_densest(random_graph, coreness, hcd, SimulatedPool())
        d_ca = coreapp_densest(random_graph, coreness=coreness)
        assert d_pbks.average_degree >= d_ca.average_degree - 1e-9

    def test_complete_graph(self):
        g = complete_graph(6)
        coreness, hcd = decomposed(g)
        d = pbks_densest(g, coreness, hcd, SimulatedPool())
        assert d.size == 6
        assert d.average_degree == pytest.approx(5.0)

    def test_half_approximation(self):
        for seed in range(4):
            g = powerlaw_cluster(60, 3, 0.5, seed=seed)
            coreness, hcd = decomposed(g)
            approx = pbks_densest(g, coreness, hcd, SimulatedPool())
            exact = exact_densest(g)
            assert approx.average_degree <= exact.average_degree + 1e-9
            assert approx.average_degree >= 0.5 * exact.average_degree - 1e-9


class TestExactDensest:
    def test_matches_brute_force(self):
        for seed in range(3):
            g = erdos_renyi(9, 0.4, seed=seed)
            if g.num_edges == 0:
                continue
            exact = exact_densest(g)
            assert exact.average_degree == pytest.approx(
                brute_force_densest_avg_degree(g)
            )

    def test_planted_clique_found(self):
        # sparse background + K6: the K6 is the densest subgraph
        edges = list(erdos_renyi(30, 0.05, seed=1).edges())
        clique = list(range(30, 36))
        edges += [(u, v) for u in clique for v in clique if u < v]
        g = Graph.from_edges(edges)
        exact = exact_densest(g)
        assert exact.average_degree >= 5.0

    def test_empty_graph(self):
        res = exact_densest(Graph.empty(3))
        assert res.average_degree == 0.0


class TestCoreApp:
    def test_is_kmax_core_component(self, random_graph):
        coreness = core_decomposition(random_graph)
        res = coreapp_densest(random_graph, coreness=coreness)
        kmax = int(coreness.max())
        assert np.all(coreness[res.members] >= kmax)

    def test_charges_pool_including_peel(self, random_graph):
        pool = SimulatedPool()
        coreapp_densest(random_graph, pool)
        assert pool.clock > 0

    def test_empty_graph(self):
        res = coreapp_densest(Graph.empty(0))
        assert res.size == 0


class TestMaximumClique:
    def brute_force_clique_number(self, graph: Graph) -> int:
        best = 1 if graph.num_vertices else 0
        for size in range(2, graph.num_vertices + 1):
            found = False
            for subset in itertools.combinations(range(graph.num_vertices), size):
                if is_clique(graph, list(subset)):
                    best = size
                    found = True
                    break
            if not found:
                break
        return best

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_brute_force(self, seed):
        g = erdos_renyi(12, 0.4, seed=seed)
        mc = maximum_clique(g)
        assert is_clique(g, mc)
        assert mc.size == self.brute_force_clique_number(g)

    def test_complete_graph(self):
        mc = maximum_clique(complete_graph(7))
        assert mc.size == 7

    def test_triangle_free(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        assert maximum_clique(g).size == 2

    def test_empty(self):
        assert maximum_clique(Graph.empty(0)).size == 0

    def test_planted_clique_inside_densest_core(self):
        # The Table IV scenario: MC should fall inside PBKS-D's output.
        rng_edges = list(erdos_renyi(60, 0.05, seed=7).edges())
        clique = list(range(60, 68))
        rng_edges += [(u, v) for u in clique for v in clique if u < v]
        g = Graph.from_edges(rng_edges)
        coreness, hcd = decomposed(g)
        dens = pbks_densest(g, coreness, hcd, SimulatedPool())
        mc = maximum_clique(g)
        assert set(mc.tolist()) <= set(dens.members.tolist())

    def test_is_clique_helper(self, triangle):
        assert is_clique(triangle, [0, 1, 2])
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert not is_clique(g, [0, 1, 2])
        assert is_clique(g, [0, 1])
        assert is_clique(g, [2])
