"""Determinism regression: results are bit-identical across thread counts.

The simulated substrate executes virtual threads sequentially, so every
parallel kernel must produce *exactly* the same output no matter how
many virtual threads the pool is configured with — the thread count may
change the simulated clock (more parallelism, shorter span) but never
the answer.  A divergence here means some kernel's result depends on
the work partition, i.e. a real scheduling hazard the race detector
models.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.phcd import phcd_build_hcd
from repro.core.pkc import pkc_core_decomposition
from repro.graph.generators import erdos_renyi, powerlaw_cluster
from repro.parallel.scheduler import SimulatedPool
from repro.search.pbks import pbks_search
from repro.unionfind.waitfree import SimulatedWaitFreeUnionFind

THREADS = (1, 2, 4, 8)


def _graph():
    return powerlaw_cluster(150, 3, 0.3, seed=21)


def _hcd_snapshot(hcd):
    return (
        hcd.node_coreness.tolist(),
        hcd.parent.tolist(),
        hcd.tid.tolist(),
    )


@pytest.mark.parametrize("use_waitfree", [True, False])
def test_phcd_identical_across_thread_counts(use_waitfree):
    graph = _graph()
    snapshots = []
    for threads in THREADS:
        pool = SimulatedPool(threads=threads)
        coreness = pkc_core_decomposition(graph, pool)
        hcd = phcd_build_hcd(
            graph, coreness, pool, use_waitfree=use_waitfree
        )
        snapshots.append((coreness.tolist(), _hcd_snapshot(hcd)))
    assert all(s == snapshots[0] for s in snapshots[1:])


def test_pbks_identical_across_thread_counts():
    graph = _graph()
    picks = []
    for threads in THREADS:
        pool = SimulatedPool(threads=threads)
        coreness = pkc_core_decomposition(graph, pool)
        hcd = phcd_build_hcd(graph, coreness, pool)
        result = pbks_search(
            graph, coreness, hcd, "internal_density", pool
        )
        picks.append(
            (
                result.best_node,
                result.best_k,
                result.best_score,
                result.scores.tolist(),
            )
        )
    assert all(p == picks[0] for p in picks[1:])


def test_waitfree_unionfind_identical_across_thread_counts():
    graph = erdos_renyi(140, 0.05, seed=8)
    edges = [(int(u), int(v)) for u, v in graph.edges()]
    outcomes = []
    for threads in THREADS:
        pool = SimulatedPool(threads=threads)
        uf = SimulatedWaitFreeUnionFind(
            np.arange(140), failure_rate=0.2, seed=5
        )
        pool.parallel_for(
            edges,
            lambda e, ctx: uf.union(e[0], e[1], ctx),
            label="det_uf_union",
        )
        pivots = pool.parallel_for(
            list(range(140)),
            lambda v, ctx: uf.get_pivot(v, ctx),
            label="det_uf_pivot",
        )
        comps = pool.parallel_for(
            list(range(140)),
            lambda v, ctx: uf.find(v, ctx),
            label="det_uf_find",
        )
        outcomes.append((list(pivots), list(comps)))
    assert all(o == outcomes[0] for o in outcomes[1:])


def test_serve_batch_results_identical_across_thread_counts(tmp_path):
    """Batched serving answers and the whole replay report are
    bit-identical at every thread count (the HCDServe determinism bar:
    work-unit latencies, cache stats, and query results may not depend
    on the work partition)."""
    from repro.serve import (
        HCDService,
        QueryPlanner,
        SnapshotCatalog,
        SnapshotExecutor,
        build_snapshot,
        normalize_request,
        synthetic_trace,
    )

    graph = _graph()
    catalog = SnapshotCatalog(tmp_path)
    catalog.publish(build_snapshot(graph, threads=4, name="det"))

    requests = [
        {"kind": "pbks", "metric": "average_degree"},
        {"kind": "pbks", "metric": "clustering_coefficient"},
        {"kind": "densest"},
        {"kind": "best_k", "metric": "internal_density"},
        {"kind": "influential", "k": 2, "r": 3, "weights": "coreness"},
    ]
    plan = QueryPlanner().plan(
        [(i, normalize_request(r)) for i, r in enumerate(requests)]
    )
    trace = synthetic_trace(48, seed=3)

    batch_results = []
    replays = []
    for threads in THREADS:
        snapshot = catalog.open("det")
        executor = SnapshotExecutor(snapshot, SimulatedPool(threads=threads))
        batch_results.append(executor.execute(plan))
        report = HCDService(catalog, "det", threads=threads).serve(trace)
        signature = report.as_dict()
        # the pool clock is the one legitimately thread-dependent field
        signature.pop("sim_clock")
        signature.pop("threads")
        signature["records"] = [r.as_dict() for r in report.records]
        replays.append(signature)

    assert all(r == batch_results[0] for r in batch_results[1:])
    assert all(r == replays[0] for r in replays[1:])
