"""Tests for the simulated-multicore scheduler and cost model."""

import pytest

from repro.errors import SchedulerError
from repro.parallel.context import ThreadContext
from repro.parallel.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.parallel.scheduler import SimulatedPool


class TestPartitioning:
    def test_static_partition_covers_all(self):
        pool = SimulatedPool(threads=4)
        ranges = pool.partition(10)
        flat = [i for r in ranges for i in r]
        assert flat == list(range(10))

    def test_static_partition_balanced(self):
        pool = SimulatedPool(threads=3)
        sizes = [len(r) for r in pool.partition(10)]
        assert sizes == [4, 3, 3]

    def test_partition_more_threads_than_items(self):
        pool = SimulatedPool(threads=8)
        sizes = [len(r) for r in pool.partition(3)]
        assert sum(sizes) == 3

    def test_dynamic_assignment_covers_all(self):
        pool = SimulatedPool(threads=3)
        buckets = pool._dynamic_assignment(20, grain=4)
        flat = sorted(i for b in buckets for i in b)
        assert flat == list(range(20))

    def test_dynamic_bad_grain(self):
        pool = SimulatedPool(threads=2)
        with pytest.raises(SchedulerError):
            pool.parallel_for([1], lambda x, c: x, chunking="dynamic", grain=0)


class TestParallelFor:
    def test_results_in_item_order(self):
        pool = SimulatedPool(threads=4)
        out = pool.parallel_for(list(range(17)), lambda x, ctx: x * 2)
        assert out == [2 * i for i in range(17)]

    def test_dynamic_results_in_item_order(self):
        pool = SimulatedPool(threads=4)
        out = pool.parallel_for(
            list(range(17)), lambda x, ctx: x + 1, chunking="dynamic", grain=2
        )
        assert out == [i + 1 for i in range(17)]

    def test_unknown_chunking(self):
        pool = SimulatedPool(threads=2)
        with pytest.raises(SchedulerError):
            pool.parallel_for([1], lambda x, c: x, chunking="guided")

    def test_nested_region_rejected(self):
        pool = SimulatedPool(threads=2)

        def nested(x, ctx):
            pool.parallel_for([1], lambda y, c: y)

        with pytest.raises(SchedulerError):
            pool.parallel_for([1], nested)

    def test_threads_validation(self):
        with pytest.raises(SchedulerError):
            SimulatedPool(threads=0)

    def test_same_results_any_thread_count(self):
        def work(x, ctx):
            ctx.charge(x)
            return x * x

        expected = [i * i for i in range(31)]
        for p in (1, 2, 5, 16):
            assert SimulatedPool(threads=p).parallel_for(
                list(range(31)), work
            ) == expected


class TestClock:
    def test_clock_accumulates(self):
        pool = SimulatedPool(threads=1)
        pool.parallel_for([1, 2], lambda x, ctx: ctx.charge(5))
        first = pool.clock
        assert first > 0
        pool.parallel_for([1], lambda x, ctx: ctx.charge(1))
        assert pool.clock > first

    def test_region_elapsed_is_max_thread(self):
        # two threads, one does 100 work, the other 1 -> elapsed ~ 100
        cm = CostModel(op_cost=1.0, spawn_cost=0.0, barrier_cost=0.0)
        pool = SimulatedPool(threads=2, cost_model=cm)

        def work(x, ctx):
            ctx.charge(100 if ctx.thread_id == 0 else 1)

        pool.parallel_for([0, 1], work)
        assert pool.clock == pytest.approx(100.0)

    def test_more_threads_faster_on_balanced_work(self):
        def work(x, ctx):
            ctx.charge(50)

        t1 = SimulatedPool(threads=1)
        t8 = SimulatedPool(threads=8)
        t1.parallel_for(list(range(64)), work)
        t8.parallel_for(list(range(64)), work)
        assert t8.clock < t1.clock

    def test_reset(self):
        pool = SimulatedPool(threads=1)
        pool.parallel_for([1], lambda x, ctx: ctx.charge(1))
        pool.reset()
        assert pool.clock == 0.0
        assert pool.regions == []

    def test_reset_detaches_observer(self):
        class Observer:
            def __init__(self):
                self.seen = []

            def on_region_begin(self, label, contexts):
                self.seen.append(label)

            def on_region_end(self, label, contexts):
                pass

        pool = SimulatedPool(threads=1)
        observer = Observer()
        pool.set_observer(observer)
        pool.parallel_for([1], lambda x, ctx: ctx.charge(1), label="first")
        pool.reset()
        # construction state: no observer, no phases, no regions
        assert pool.observer is None
        assert pool.phase_stack == ()
        pool.parallel_for([1], lambda x, ctx: ctx.charge(1), label="second")
        assert observer.seen == ["first"]

    def test_reset_can_keep_observer(self):
        class Observer:
            def __init__(self):
                self.seen = []

            def on_region_begin(self, label, contexts):
                self.seen.append(label)

            def on_region_end(self, label, contexts):
                pass

        pool = SimulatedPool(threads=1)
        observer = Observer()
        pool.set_observer(observer)
        pool.parallel_for([1], lambda x, ctx: ctx.charge(1), label="first")
        pool.reset(detach_observer=False)
        pool.parallel_for([1], lambda x, ctx: ctx.charge(1), label="second")
        assert pool.observer is observer
        assert observer.seen == ["first", "second"]

    def test_reset_clears_open_phase_stack(self):
        pool = SimulatedPool(threads=1)
        with pool.phase("outer"):
            assert pool.phase_stack == ("outer",)
            pool.reset()
            assert pool.phase_stack == ()
        # the exiting with-block must not underflow the cleared stack
        assert pool.phase_stack == ()

    def test_mark_elapsed(self):
        pool = SimulatedPool(threads=1)
        mark = pool.mark()
        pool.parallel_for([1], lambda x, ctx: ctx.charge(3))
        assert pool.elapsed_since(mark) == pool.clock

    def test_serial_region(self):
        pool = SimulatedPool(threads=4)
        with pool.serial_region("setup") as ctx:
            ctx.charge(42)
        assert pool.clock == pytest.approx(42.0)
        assert pool.regions[-1].label == "setup"

    def test_serial_region_nested_rejected(self):
        pool = SimulatedPool(threads=1)
        with pytest.raises(SchedulerError):
            with pool.serial_region():
                with pool.serial_region():
                    pass


class TestContention:
    def test_contended_atomics_penalized(self):
        cm = CostModel(spawn_cost=0.0, barrier_cost=0.0)
        pool = SimulatedPool(threads=4, cost_model=cm)

        def work(x, ctx):
            ctx.atomic("hot")  # all threads hit the same location

        pool.parallel_for(list(range(40)), work)
        region = pool.regions[-1]
        assert region.contention_penalty > 0

    def test_uncontended_atomics_not_penalized(self):
        cm = CostModel(spawn_cost=0.0, barrier_cost=0.0)
        pool = SimulatedPool(threads=4, cost_model=cm)

        def work(x, ctx):
            ctx.atomic("relaxed", contended=False)

        pool.parallel_for(list(range(40)), work)
        assert pool.regions[-1].contention_penalty == 0

    def test_single_thread_never_contends(self):
        pool = SimulatedPool(threads=1)

        def work(x, ctx):
            ctx.atomic("hot")

        pool.parallel_for(list(range(10)), work)
        assert pool.regions[-1].contention_penalty == 0

    def test_distinct_locations_no_penalty(self):
        cm = CostModel(spawn_cost=0.0, barrier_cost=0.0)
        pool = SimulatedPool(threads=4, cost_model=cm)
        pool.parallel_for(
            list(range(16)), lambda x, ctx: ctx.atomic(("loc", x))
        )
        assert pool.regions[-1].contention_penalty == 0


class TestCostModel:
    def test_scaled(self):
        scaled = DEFAULT_COST_MODEL.scaled(2.0)
        assert scaled.op_cost == 2 * DEFAULT_COST_MODEL.op_cost
        assert scaled.barrier_cost == 2 * DEFAULT_COST_MODEL.barrier_cost

    def test_context_local_time(self):
        ctx = ThreadContext(0, CostModel(op_cost=1.0, atomic_cost=2.0))
        ctx.charge(10)
        ctx.atomic("x")
        # atomic adds 1 work + 2 atomic surcharge
        assert ctx.local_time == pytest.approx(10 + 1 + 2)

    def test_region_stats_fields(self):
        pool = SimulatedPool(threads=2)
        pool.parallel_for([1, 2, 3], lambda x, ctx: ctx.charge(1), label="lbl")
        region = pool.regions[-1]
        assert region.label == "lbl"
        assert region.items == 3
        assert region.threads == 2
        assert region.work_total == pytest.approx(3)
