"""Tests for dynamic coreness maintenance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import core_decomposition
from repro.dynamic import DynamicGraph
from repro.errors import GraphBuildError
from repro.graph.generators import complete_graph, erdos_renyi
from repro.graph.graph import Graph


def recompute(dyn: DynamicGraph) -> np.ndarray:
    return core_decomposition(dyn.to_graph())


class TestBasics:
    def test_initial_coreness(self, paper_like_graph):
        dyn = DynamicGraph(paper_like_graph)
        assert np.array_equal(
            dyn.coreness, core_decomposition(paper_like_graph)
        )
        assert dyn.num_edges == paper_like_graph.num_edges

    def test_coreness_read_only(self, triangle):
        dyn = DynamicGraph(triangle)
        with pytest.raises(ValueError):
            dyn.coreness[0] = 99

    def test_insert_raises_on_duplicate(self, triangle):
        dyn = DynamicGraph(triangle)
        with pytest.raises(GraphBuildError):
            dyn.insert_edge(0, 1)

    def test_delete_raises_on_missing(self, triangle):
        dyn = DynamicGraph(triangle)
        with pytest.raises(GraphBuildError):
            dyn.delete_edge(0, 0)

    def test_self_loop_rejected(self, triangle):
        dyn = DynamicGraph(triangle)
        with pytest.raises(GraphBuildError):
            dyn.insert_edge(1, 1)

    def test_out_of_range(self, triangle):
        dyn = DynamicGraph(triangle)
        with pytest.raises(GraphBuildError):
            dyn.insert_edge(0, 99)

    def test_to_graph_round_trip(self, paper_like_graph):
        dyn = DynamicGraph(paper_like_graph)
        assert dyn.to_graph() == paper_like_graph


class TestInsertion:
    def test_closing_a_square_promotes(self):
        # path 0-1-2-3 plus edge 3-0 makes a cycle: coreness 1 -> 2
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        dyn = DynamicGraph(g)
        assert set(dyn.coreness.tolist()) == {1}
        dyn.insert_edge(3, 0)
        assert np.array_equal(dyn.coreness, [2, 2, 2, 2])

    def test_promotion_is_local(self):
        # two components; inserting in one must not disturb the other
        edges = list(complete_graph(4).edges())
        edges += [(u + 4, v + 4) for u, v in [(0, 1), (1, 2), (2, 0)]]
        g = Graph.from_edges(edges, num_vertices=8)
        dyn = DynamicGraph(g)
        before = dyn.coreness[4:].copy()
        dyn.insert_edge(0, 4)  # bridge, coreness unchanged everywhere
        assert np.array_equal(dyn.coreness[4:], before)
        assert np.array_equal(dyn.coreness, recompute(dyn))

    def test_growing_a_clique(self):
        dyn = DynamicGraph(Graph.from_edges([(0, 1)], num_vertices=5))
        for u in range(5):
            for v in range(u + 1, 5):
                if (u, v) != (0, 1):
                    dyn.insert_edge(u, v)
                assert np.array_equal(dyn.coreness, recompute(dyn))
        assert np.array_equal(dyn.coreness, [4] * 5)


class TestDeletion:
    def test_breaking_a_cycle_demotes(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        dyn = DynamicGraph(g)
        dyn.delete_edge(0, 1)
        assert np.array_equal(dyn.coreness, [1, 1, 1, 1])

    def test_shrinking_a_clique(self):
        dyn = DynamicGraph(complete_graph(5))
        edges = list(complete_graph(5).edges())
        for u, v in edges[:6]:
            dyn.delete_edge(u, v)
            assert np.array_equal(dyn.coreness, recompute(dyn))

    def test_isolating_a_vertex(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        dyn = DynamicGraph(g)
        dyn.delete_edge(0, 1)
        assert dyn.coreness[0] == 0


class TestAgainstRecompute:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_update_sequences(self, seed):
        rng = np.random.default_rng(seed)
        g = erdos_renyi(30, 0.1, seed=seed)
        dyn = DynamicGraph(g)
        edges = set(map(tuple, g.edge_array().tolist()))
        for _ in range(40):
            if rng.random() < 0.6 or not edges:
                while True:
                    u, v = sorted(int(x) for x in rng.integers(0, 30, size=2))
                    if u != v and (u, v) not in edges:
                        break
                dyn.insert_edge(u, v)
                edges.add((u, v))
            else:
                u, v = sorted(edges)[int(rng.integers(0, len(edges)))]
                dyn.delete_edge(u, v)
                edges.remove((u, v))
            assert np.array_equal(dyn.coreness, recompute(dyn))

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        flips=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=14),
                st.integers(min_value=0, max_value=14),
            ),
            max_size=25,
        ),
    )
    def test_property_toggle_edges(self, seed, flips):
        """Toggling arbitrary edges keeps coreness equal to recompute."""
        g = erdos_renyi(15, 0.15, seed=seed)
        dyn = DynamicGraph(g)
        for u, v in flips:
            if u == v:
                continue
            if dyn.has_edge(u, v):
                dyn.delete_edge(u, v)
            else:
                dyn.insert_edge(u, v)
        assert np.array_equal(dyn.coreness, recompute(dyn))


class TestHcdRebuild:
    def test_hcd_reflects_updates(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        dyn = DynamicGraph(g)
        before = dyn.hcd()
        dyn.insert_edge(3, 0)
        dyn.insert_edge(3, 1)
        after = dyn.hcd(threads=2)
        assert after.kmax == 3  # K4 formed
        assert before.kmax == 2
        after.validate(dyn.to_graph(), dyn.coreness)


class TestBatchUpdates:
    def test_insert_batch_skips_duplicates(self):
        dyn = DynamicGraph(
            Graph.from_edges([(0, 1), (1, 2), (0, 2)], num_vertices=4)
        )
        report = dyn.insert_edges([(0, 1), (0, 0), (1, 3), (3, 2)])
        assert report.applied == 2
        assert (0, 0, "self-loop") in report.skipped
        assert (0, 1, "present") in report.skipped
        assert dyn.num_edges == 5
        assert np.array_equal(dyn.coreness, recompute(dyn))

    def test_delete_batch_skips_absent(self):
        dyn = DynamicGraph(Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]))
        report = dyn.delete_edges([(2, 3), (0, 3)])
        assert report.applied == 1
        assert (0, 3, "absent") in report.skipped
        assert np.array_equal(dyn.coreness, recompute(dyn))

    def test_hcd_cache_reused_and_invalidated(self, paper_like_graph):
        dyn = DynamicGraph(paper_like_graph)
        first = dyn.hcd()
        assert dyn.hcd() is first  # cached between updates
        dyn.insert_edge(0, 13)
        second = dyn.hcd()
        assert second is not first
        second.validate(dyn.to_graph(), dyn.coreness)
