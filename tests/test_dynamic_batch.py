"""Tests for batched parallel maintenance, DynamicCSR, and delta publishing.

Covers the batched repair path (``DynamicGraph.apply_batch`` /
``batch_repair``), the slack-capacity adjacency structure backing it,
the dynamic-update bugfix regressions (endpoint validation, batch
atomicity), and delta snapshot publishing.  The load-bearing property:
``apply_batch`` is **bit-identical** to per-edge maintenance and to a
from-scratch ``core_decomposition`` at every thread count.
"""

import numpy as np
import pytest

from repro.core.decomposition import core_decomposition
from repro.dynamic import DynamicCSR, DynamicGraph, batch_repair, normalize_batch
from repro.errors import GraphBuildError
from repro.graph.generators import erdos_renyi, powerlaw_cluster
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool

THREADS = [1, 2, 4, 8]


def recompute(dyn: DynamicGraph) -> np.ndarray:
    return core_decomposition(dyn.to_graph())


def edge_set(graph: Graph) -> set:
    return {tuple(e) for e in graph.edge_array().tolist()}


# ----------------------------------------------------------------------
# DynamicCSR
# ----------------------------------------------------------------------


class TestDynamicCSR:
    def test_round_trip(self, paper_like_graph):
        acsr = DynamicCSR.from_graph(paper_like_graph)
        back = acsr.to_csr()
        assert np.array_equal(back.indptr, paper_like_graph.indptr)
        assert np.array_equal(back.indices, paper_like_graph.indices)

    def test_empty_graph(self):
        acsr = DynamicCSR.from_graph(Graph.from_edges([], num_vertices=0))
        assert acsr.num_vertices == 0
        assert acsr.to_csr().num_edges == 0

    def test_insert_remove_membership(self, triangle):
        acsr = DynamicCSR.from_graph(triangle)
        assert acsr.has(0, 1)
        acsr.remove(0, 1)
        assert not acsr.has(0, 1)
        acsr.insert(0, 1)
        assert acsr.has(0, 1) and acsr.has(1, 0)

    def test_insert_present_raises(self, triangle):
        acsr = DynamicCSR.from_graph(triangle)
        with pytest.raises(GraphBuildError):
            acsr.insert(0, 1)

    def test_remove_absent_raises(self, triangle):
        acsr = DynamicCSR.from_graph(triangle)
        acsr.remove(0, 1)
        with pytest.raises(GraphBuildError):
            acsr.remove(0, 1)

    def test_rows_stay_sorted_through_relocation(self):
        # vertex 0 starts with degree 1; repeated insertions overflow its
        # slack capacity and force tail relocations
        graph = Graph.from_edges([(0, 1)], num_vertices=40)
        acsr = DynamicCSR.from_graph(graph)
        for v in range(2, 40):
            acsr.insert(0, v)
        row = acsr.neighbors(0)
        assert list(row) == sorted(row)
        assert acsr.degree(0) == 39

    def test_compact_preserves_contents(self):
        graph = erdos_renyi(60, 0.15, seed=3)
        acsr = DynamicCSR.from_graph(graph)
        rng = np.random.default_rng(3)
        for _ in range(200):
            u, v = sorted(rng.integers(0, 60, 2).tolist())
            if u == v:
                continue
            if acsr.has(u, v):
                acsr.remove(u, v)
            else:
                acsr.insert(u, v)
        before = edge_set(acsr.to_csr())
        acsr.compact()
        assert edge_set(acsr.to_csr()) == before
        assert acsr.dead_space == 0

    def test_random_mutations_match_reference(self):
        graph = erdos_renyi(50, 0.1, seed=7)
        acsr = DynamicCSR.from_graph(graph)
        reference = edge_set(graph)
        rng = np.random.default_rng(7)
        for step in range(400):
            u, v = sorted(rng.integers(0, 50, 2).tolist())
            if u == v:
                continue
            if (u, v) in reference:
                acsr.remove(u, v)
                reference.discard((u, v))
            else:
                acsr.insert(u, v)
                reference.add((u, v))
            if step % 100 == 99:
                assert edge_set(acsr.to_csr()) == reference
        assert edge_set(acsr.to_csr()) == reference


# ----------------------------------------------------------------------
# normalize_batch
# ----------------------------------------------------------------------


class TestNormalizeBatch:
    def test_canonicalizes_and_dedups(self):
        edges, skipped = normalize_batch(
            [(3, 1), (1, 3), (2, 2), (0, 4)], 5, where="insertions"
        )
        assert edges == [(1, 3), (0, 4)]
        assert (1, 3, "duplicate") in skipped
        assert (2, 2, "self-loop") in skipped

    def test_out_of_range_names_position(self):
        with pytest.raises(GraphBuildError, match="insertions\\[1\\]"):
            normalize_batch([(0, 1), (0, 9)], 5, where="insertions")
        with pytest.raises(GraphBuildError, match="deletions\\[0\\]"):
            normalize_batch([(-1, 2)], 5, where="deletions")


# ----------------------------------------------------------------------
# apply_batch correctness
# ----------------------------------------------------------------------


class TestApplyBatch:
    def test_k4_from_empty_jumps_levels(self):
        # inserting all of K4 at once lifts every vertex 0 -> 3 in one
        # batch: the promote verification sweeps must ratchet through
        # the intermediate levels
        dyn = DynamicGraph(Graph.from_edges([], num_vertices=4))
        edges = [(u, v) for u in range(4) for v in range(u + 1, 4)]
        report = dyn.apply_batch(insertions=edges)
        assert report.applied == 6
        assert np.array_equal(dyn.coreness, [3, 3, 3, 3])
        assert np.array_equal(dyn.coreness, recompute(dyn))

    def test_clique_teardown_cascades(self):
        # deleting one K5 vertex's edges demotes the rest 4 -> 3
        edges = [(u, v) for u in range(5) for v in range(u + 1, 5)]
        dyn = DynamicGraph(Graph.from_edges(edges, num_vertices=5))
        report = dyn.apply_batch(deletions=[(0, v) for v in range(1, 5)])
        assert report.applied == 4
        assert np.array_equal(dyn.coreness, [0, 3, 3, 3, 3])
        assert np.array_equal(dyn.coreness, recompute(dyn))

    def test_mixed_batch_matches_per_edge(self):
        graph = powerlaw_cluster(120, 3, 0.3, seed=11)
        batched = DynamicGraph(graph)
        per_edge = DynamicGraph(graph)
        present = sorted(edge_set(graph))
        deletions = present[:: len(present) // 10][:10]
        insertions = [(0, 100), (1, 101), (2, 102), (3, 103)]

        batched.apply_batch(insertions=insertions, deletions=deletions)
        for u, v in insertions:
            per_edge.insert_edge(u, v)
        for u, v in deletions:
            per_edge.delete_edge(u, v)

        assert np.array_equal(batched.coreness, per_edge.coreness)
        assert np.array_equal(batched.coreness, recompute(batched))
        assert edge_set(batched.to_graph()) == edge_set(per_edge.to_graph())

    def test_skip_policy_matches_per_edge_batches(self, triangle):
        dyn = DynamicGraph(triangle)
        report = dyn.apply_batch(
            insertions=[(0, 1), (1, 1)], deletions=[(0, 2), (0, 2)]
        )
        assert report.applied == 1
        assert (0, 1, "present") in report.skipped
        assert (1, 1, "self-loop") in report.skipped
        assert (0, 2, "duplicate") in report.skipped

    def test_empty_batch_is_noop(self, triangle):
        dyn = DynamicGraph(triangle)
        report = dyn.apply_batch()
        assert report.applied == 0 and report.changed == 0
        assert dyn.mutation_count == 0

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_property_random_batches(self, seed):
        """Random mixed batches with duplicate/reversed/self-loop noise
        stay bit-identical to per-edge maintenance and to recompute."""
        rng = np.random.default_rng(seed)
        n = 60
        graph = erdos_renyi(n, 0.08, seed=seed)
        batched = DynamicGraph(graph)
        per_edge = DynamicGraph(graph)

        for _ in range(4):
            present = sorted(edge_set(batched.to_graph()))
            k = min(len(present), int(rng.integers(2, 8)))
            idx = rng.choice(len(present), size=k, replace=False)
            deletions = [present[i] for i in sorted(idx.tolist())]
            insertions = []
            absent = set(present)
            while len(insertions) < 6:
                u, v = sorted(rng.integers(0, n, 2).tolist())
                if u != v and (u, v) not in absent:
                    absent.add((u, v))
                    insertions.append((u, v))
            # noise: reversed duplicate, exact duplicate, self-loop
            noisy_ins = insertions + [insertions[0][::-1], (5, 5)]
            noisy_dels = deletions + [deletions[0]]

            report = batched.apply_batch(
                insertions=noisy_ins, deletions=noisy_dels
            )
            assert report.applied == len(insertions) + len(deletions)
            for u, v in insertions:
                per_edge.insert_edge(u, v)
            for u, v in deletions:
                per_edge.delete_edge(u, v)

            assert np.array_equal(batched.coreness, per_edge.coreness)
            assert np.array_equal(batched.coreness, recompute(batched))

    @pytest.mark.parametrize("threads", THREADS)
    def test_thread_count_invariance(self, threads):
        graph = powerlaw_cluster(100, 3, 0.25, seed=23)
        present = sorted(edge_set(graph))
        deletions = present[:: len(present) // 8][:8]
        insertions = [(0, 90), (1, 91), (2, 92), (4, 93), (5, 94)]

        dyn = DynamicGraph(graph)
        pool = SimulatedPool(threads=threads)
        report = dyn.apply_batch(
            insertions=insertions, deletions=deletions, pool=pool
        )
        # canonical result: identical at every width
        assert np.array_equal(dyn.coreness, recompute(dyn))
        serial = DynamicGraph(graph)
        serial_report = serial.apply_batch(
            insertions=insertions, deletions=deletions, threads=1
        )
        assert np.array_equal(dyn.coreness, serial.coreness)
        assert report.changed == serial_report.changed
        assert report.rounds == serial_report.rounds

    def test_batch_repair_direct(self):
        # the kernel-level entry point used by the sanitizer harness
        graph = powerlaw_cluster(80, 3, 0.3, seed=31)
        coreness = core_decomposition(graph).astype(np.int64)
        acsr = DynamicCSR.from_graph(graph)
        acsr.insert(0, 70)
        acsr.insert(1, 71)
        changed, rounds = batch_repair(
            acsr,
            coreness,
            inserted=[(0, 70), (1, 71)],
            deleted=[],
            pool=SimulatedPool(threads=4),
        )
        assert rounds >= 1
        assert np.array_equal(coreness, core_decomposition(acsr.to_csr()))
        for v in changed:
            assert 0 <= v < 80


# ----------------------------------------------------------------------
# bugfix regressions
# ----------------------------------------------------------------------


class TestEndpointValidationRegression:
    """has_edge used to wrap negative indices and leak IndexError."""

    def test_negative_index_rejected(self, triangle):
        dyn = DynamicGraph(triangle)
        with pytest.raises(GraphBuildError):
            dyn.has_edge(-1, 0)

    def test_past_end_rejected(self, triangle):
        dyn = DynamicGraph(triangle)
        with pytest.raises(GraphBuildError):
            dyn.has_edge(0, dyn.num_vertices)

    def test_self_query_is_false_not_error(self, triangle):
        assert DynamicGraph(triangle).has_edge(0, 0) is False


class TestBatchAtomicityRegression:
    """A bad endpoint mid-batch used to leave earlier edges applied."""

    def test_insert_batch_validates_up_front(self, triangle):
        dyn = DynamicGraph(triangle)
        before = dyn.coreness.copy()
        with pytest.raises(GraphBuildError):
            dyn.insert_edges([(0, 1), (0, 99)])
        assert edge_set(dyn.to_graph()) == edge_set(triangle)
        assert np.array_equal(dyn.coreness, before)
        assert dyn.mutation_count == 0

    def test_delete_batch_validates_up_front(self, triangle):
        dyn = DynamicGraph(triangle)
        with pytest.raises(GraphBuildError):
            dyn.delete_edges([(0, 1), (-2, 1)])
        assert edge_set(dyn.to_graph()) == edge_set(triangle)
        assert dyn.mutation_count == 0

    def test_apply_batch_validates_both_lists_up_front(self, triangle):
        dyn = DynamicGraph(triangle)
        with pytest.raises(GraphBuildError):
            dyn.apply_batch(insertions=[(0, 1)], deletions=[(99, 0)])
        assert edge_set(dyn.to_graph()) == edge_set(triangle)
        assert dyn.mutation_count == 0


# ----------------------------------------------------------------------
# delta publishing
# ----------------------------------------------------------------------


class TestDeltaSnapshots:
    def _mutated(self, seed=13):
        graph = powerlaw_cluster(110, 3, 0.3, seed=seed)
        dyn = DynamicGraph(graph)
        present = sorted(edge_set(graph))
        dyn.apply_batch(
            insertions=[(0, 100), (2, 101)],
            deletions=present[:: len(present) // 6][:6],
        )
        return dyn

    def test_delta_equals_full_rebuild(self):
        from repro.serve.snapshot import snapshot_from_dynamic

        base_dyn = DynamicGraph(powerlaw_cluster(110, 3, 0.3, seed=13))
        base = snapshot_from_dynamic(base_dyn, threads=2, name="s")
        dyn = self._mutated()
        delta = snapshot_from_dynamic(
            dyn, threads=2, name="s", previous=base
        )
        full = snapshot_from_dynamic(dyn, threads=2, name="s")
        for key, value in full.arrays().items():
            assert np.array_equal(delta.arrays()[key], value), key
        assert "delta" in delta.build_info

    def test_rank_reused_when_coreness_unchanged(self):
        from repro.serve.snapshot import snapshot_from_dynamic

        # an edge between two vertices of strictly higher coreness
        # leaves the coreness array untouched
        dyn = self._mutated()
        base = snapshot_from_dynamic(dyn, threads=2, name="s")
        inserted = False
        for u in range(dyn.num_vertices):
            for v in range(u + 1, dyn.num_vertices):
                if dyn.has_edge(u, v):
                    continue
                dyn.insert_edge(u, v)
                if np.array_equal(dyn.coreness, base.coreness):
                    inserted = True
                    break
                dyn.delete_edge(u, v)  # promoted someone; undo and keep looking
            if inserted:
                break
        assert inserted, "no coreness-neutral edge found in the stand-in"
        delta = snapshot_from_dynamic(
            dyn, threads=2, name="s", previous=base
        )
        assert "rank" in delta.build_info.get("delta", "")

    def test_feed_debounce_and_flush(self, tmp_path):
        from repro.serve import DynamicServingFeed, SnapshotCatalog

        dyn = DynamicGraph(powerlaw_cluster(60, 3, 0.3, seed=17))
        cat = SnapshotCatalog(tmp_path)
        feed = DynamicServingFeed(
            dyn, cat, name="live", threads=2, publish_every=3
        )
        assert feed.publish() == 1
        assert feed.insert_edge(0, 50) is None
        assert feed.insert_edge(1, 51) is None
        assert feed.pending_mutations == 2
        assert feed.insert_edge(2, 52) == 2  # window filled
        assert feed.pending_mutations == 0
        assert feed.flush() is None  # nothing buffered
        assert feed.delete_edge(0, 50) is None
        assert feed.flush() == 3
        assert cat.latest_version("live") == 3

    def test_feed_batch_counts_applied_mutations(self, tmp_path):
        from repro.serve import DynamicServingFeed, SnapshotCatalog

        dyn = DynamicGraph(powerlaw_cluster(60, 3, 0.3, seed=19))
        cat = SnapshotCatalog(tmp_path)
        feed = DynamicServingFeed(
            dyn, cat, name="live", threads=2, publish_every=4
        )
        feed.publish()
        # three applied mutations (the self-loop is skipped) < window
        assert (
            feed.apply_batch(insertions=[(0, 50), (1, 51), (2, 2), (3, 52)])
            is None
        )
        assert feed.pending_mutations == 3
        assert feed.apply_batch(deletions=[(0, 50)]) == 2  # fills window
        assert feed.pending_mutations == 0

    def test_publish_every_validated(self, tmp_path):
        from repro.serve import DynamicServingFeed, SnapshotCatalog

        dyn = DynamicGraph(powerlaw_cluster(30, 2, 0.2, seed=1))
        with pytest.raises(ValueError):
            DynamicServingFeed(
                dyn, SnapshotCatalog(tmp_path), name="x", publish_every=0
            )
