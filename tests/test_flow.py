"""SimFlow (SAN4xx) and sanitize-CLI surface tests.

Covers the CFG substrate, divergent-sync taint analysis, the
disjoint-write interval prover (verification, SAN403, and SAN201
downgrades), kernel effect signatures with baseline gating, the
SAN001 suppression-hygiene lint, and the ``repro sanitize`` CLI
exit-code contract (missing path, --strict promotion, --flow).
"""

from __future__ import annotations

import ast
import json

import pytest

from repro.cli import main as cli_main
from repro.sanitizer.cfg import build_cfg
from repro.sanitizer.flow import (
    EffectSignature,
    FlowAnalyzer,
    ModuleIndex,
    analyze_source,
    apply_baseline,
    check_kernel_effects,
    flow_selftest,
    infer_kernel_effects,
    load_baseline,
)
from repro.sanitizer.lint import lint_source


def _fn(source: str) -> ast.FunctionDef:
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            return node
    raise AssertionError("no function in source")


# ======================================================================
# CFG
# ======================================================================


class TestCFG:
    def test_straight_line_single_block(self):
        cfg = build_cfg(_fn("def f():\n    a = 1\n    b = 2\n"))
        branchy = [b for b in cfg.blocks if b.is_branch]
        assert not branchy

    def test_if_creates_branch_and_join(self):
        cfg = build_cfg(
            _fn("def f(x):\n    if x:\n        a = 1\n    b = 2\n")
        )
        assert any(b.is_branch and b.kind == "if" for b in cfg.blocks)

    def test_early_return_makes_tail_control_dependent(self):
        # after `if x: return`, the tail does NOT postdominate the
        # branch, so it must be control-dependent on it
        cfg = build_cfg(
            _fn(
                "def f(x, pool):\n"
                "    if x:\n"
                "        return\n"
                "    pool.phase('p')\n"
            )
        )
        cd = cfg.transitive_control_dependence()
        branch = next(b.bid for b in cfg.blocks if b.kind == "if")
        tail = next(
            b.bid
            for b in cfg.blocks
            if any(isinstance(s, ast.Expr) for s in b.stmts)
        )
        assert branch in cd[tail]

    def test_plain_if_body_dependent_tail_not(self):
        cfg = build_cfg(
            _fn(
                "def f(x, pool):\n"
                "    if x:\n"
                "        a = 1\n"
                "    pool.phase('p')\n"
            )
        )
        cd = cfg.transitive_control_dependence()
        branch = next(b.bid for b in cfg.blocks if b.kind == "if")
        tail = next(
            b.bid
            for b in cfg.blocks
            if any(isinstance(s, ast.Expr) for s in b.stmts)
        )
        assert branch not in cd[tail]

    def test_while_true_dead_end_terminates(self):
        cfg = build_cfg(
            _fn("def f():\n    while True:\n        a = 1\n")
        )
        # postdominator fixpoint must settle despite no path to exit
        pdom = cfg.postdominators()
        assert len(pdom) == len(cfg.blocks)

    def test_loop_body_control_dependent_on_header(self):
        cfg = build_cfg(
            _fn(
                "def f(n, pool):\n"
                "    for i in range(n):\n"
                "        pool.phase('p')\n"
            )
        )
        cd = cfg.transitive_control_dependence()
        header = next(b.bid for b in cfg.blocks if b.kind == "for")
        body = next(
            b.bid
            for b in cfg.blocks
            if any(isinstance(s, ast.Expr) for s in b.stmts)
        )
        assert header in cd[body]


# ======================================================================
# divergent sync (SAN401 / SAN402)
# ======================================================================


DIVERGENT_BRANCH = """
def run(pool, items):
    def worker(v, ctx):
        if ctx.thread_id == 0:
            pool.phase("reduce")
    pool.parallel_for(items, worker)
"""

DIVERGENT_EARLY_RETURN = """
def run(pool, items, skip):
    def worker(v, ctx):
        if skip[v]:
            return
        pool.serial_region("merge")
    pool.parallel_for(items, worker)
"""

DIVERGENT_LOOP = """
def run(pool, items, deg):
    def worker(v, ctx):
        for _ in range(deg[v]):
            pool.phase("step")
    pool.parallel_for(items, worker)
"""

UNIFORM_NESTED = """
def run(pool, items, n):
    def worker(v, ctx):
        pool.parallel_for(range(n), lambda i, c: c.charge(1))
    pool.parallel_for(items, worker)
"""

CLEAN_WORKER = """
def run(pool, items, out):
    def worker(v, ctx):
        ctx.write(("out", int(v)))
        out[v] = v * 2
    pool.parallel_for(items, worker)
"""

DIVERGENT_ATOMIC = """
def run(pool, items, counter, flag):
    def worker(v, ctx):
        if ctx.thread_id % 2:
            ctx.atomic(("lock", 0), 1)
    pool.parallel_for(items, worker)
"""

RELAXED_ATOMIC_OK = """
def run(pool, items, counter):
    def worker(v, ctx):
        if ctx.thread_id % 2:
            ctx.atomic(("sum", 0), 1, contended=False)
    pool.parallel_for(items, worker)
"""

VARIANT_LOCATION_ATOMIC_OK = """
def run(pool, items, counter):
    def worker(v, ctx):
        if v > 3:
            ctx.atomic(("slot", v), 1)
    pool.parallel_for(items, worker)
"""

INTERPROCEDURAL = """
def helper(pool, flag):
    if flag:
        pool.phase("inner")

def run(pool, items):
    def worker(v, ctx):
        helper(pool, ctx.thread_id == 0)
    pool.parallel_for(items, worker)
"""


class TestDivergentSync:
    def codes(self, source: str) -> list[tuple[str, str]]:
        rep = analyze_source(source, "mod_under_test.py")
        return [(f.code, f.severity) for f in rep.findings]

    def test_variant_branch_is_san401_error(self):
        assert ("SAN401", "error") in self.codes(DIVERGENT_BRANCH)

    def test_early_return_divergence_caught(self):
        # the sync op is written at the top level of the worker; only
        # control dependence (not nesting) sees the divergence
        assert ("SAN401", "error") in self.codes(DIVERGENT_EARLY_RETURN)

    def test_variant_loop_is_san402_error(self):
        assert ("SAN402", "error") in self.codes(DIVERGENT_LOOP)

    def test_uniform_nested_region_is_san402_warning(self):
        codes = self.codes(UNIFORM_NESTED)
        assert ("SAN402", "warning") in codes
        assert ("SAN401", "error") not in codes

    def test_clean_worker_no_findings(self):
        assert self.codes(CLEAN_WORKER) == []

    def test_contended_uniform_atomic_under_variance_flagged(self):
        assert ("SAN402", "error") in self.codes(DIVERGENT_ATOMIC)

    def test_relaxed_atomic_exempt(self):
        assert self.codes(RELAXED_ATOMIC_OK) == []

    def test_variant_location_atomic_exempt(self):
        assert self.codes(VARIANT_LOCATION_ATOMIC_OK) == []

    def test_interprocedural_divergence_attributed_to_call_site(self):
        rep = analyze_source(INTERPROCEDURAL, "mod_under_test.py")
        hits = [f for f in rep.findings if f.code == "SAN401"]
        assert hits, [str(f) for f in rep.findings]
        assert "helper" in hits[0].message
        # attributed at the worker's call line, in the worker's file
        assert hits[0].line == 8

    def test_suppression_comment_silences(self):
        src = DIVERGENT_BRANCH.replace(
            'pool.phase("reduce")',
            'pool.phase("reduce")  # sani: ok - selftest scaffolding',
        )
        rep = analyze_source(src, "mod_under_test.py")
        assert not rep.findings


# ======================================================================
# disjoint writes (SAN403 / verified)
# ======================================================================


CHUNK_SAFE = """
def run(pool, out, chunks):
    def worker(chunk, ctx):
        start, end = chunk
        for i in range(start, end):
            out[i] = i
    pool.parallel_for(chunks, worker)
"""

CHUNK_OFF_BY_ONE = """
def run(pool, out, chunks):
    def worker(chunk, ctx):
        start, end = chunk
        for i in range(start, end):
            out[i + 1] = i
    pool.parallel_for(chunks, worker)
"""

CHUNK_STORE_AT_END = """
def run(pool, out, chunks):
    def worker(chunk, ctx):
        start, end = chunk
        out[end] = 1
    pool.parallel_for(chunks, worker)
"""

PER_ITEM_STRIDED = """
def run(pool, out, items):
    def worker(v, ctx):
        out[2 * v] = 1.0
        out[2 * v + 1] = 2.0
    pool.parallel_for(items, worker)
"""

PER_ITEM_FOLD = """
def run(pool, out, n):
    def worker(v, ctx):
        out[v % 4] = v
    pool.parallel_for(range(n), worker)
"""

PER_ITEM_UNPROVEN = """
def run(pool, out, items, perm):
    def worker(v, ctx):
        out[perm[v]] = v
    pool.parallel_for(items, worker)
"""


class TestDisjointWrites:
    def test_chunk_loop_verified(self):
        rep = analyze_source(CHUNK_SAFE, "m.py")
        assert not rep.findings
        assert [v.mode for v in rep.verified] == ["chunk"]

    def test_cross_chunk_off_by_one_is_san403(self):
        rep = analyze_source(CHUNK_OFF_BY_ONE, "m.py")
        assert [f.code for f in rep.findings] == ["SAN403"]
        assert rep.findings[0].severity == "error"
        assert not rep.verified

    def test_store_at_exclusive_end_is_san403(self):
        rep = analyze_source(CHUNK_STORE_AT_END, "m.py")
        assert [f.code for f in rep.findings] == ["SAN403"]

    def test_strided_per_item_verified(self):
        rep = analyze_source(PER_ITEM_STRIDED, "m.py")
        assert not rep.findings
        assert len(rep.verified) == 2
        assert all(v.mode == "per-item" for v in rep.verified)

    def test_modulo_fold_over_range_items_is_san403(self):
        rep = analyze_source(PER_ITEM_FOLD, "m.py")
        assert [f.code for f in rep.findings] == ["SAN403"]

    def test_data_dependent_index_unproven_not_flagged(self):
        rep = analyze_source(PER_ITEM_UNPROVEN, "m.py")
        assert not rep.findings
        assert not rep.verified

    def test_repo_src_has_at_least_three_verified_sites(self):
        # the acceptance bar: the interval prover must verify >= 3
        # SAN201-pattern stores across the repo's own kernels
        analyzer = FlowAnalyzer()
        rep = analyzer.analyze_paths(["src"])
        assert len(rep.verified) >= 3
        assert {v.path.rsplit("/", 1)[-1] for v in rep.verified} >= {
            "pkc.py",
            "preprocessing.py",
            "partition.py",
        }

    def test_verified_sites_cover_lint_findings(self):
        # per-item: the lint's SAN201 line must be a verified site;
        # chunk idiom: the lint's SAN101 (it cannot see through the
        # unpack) must be refuted by the prover at the same line
        per_item = (
            "def run(pool, out, items):\n"
            "    def worker(v, ctx):\n"
            "        out[v] = v\n"
            "    pool.parallel_for(items, worker)\n"
        )
        lint = [
            f for f in lint_source(per_item, "m.py") if f.code == "SAN201"
        ]
        assert lint, "expected a SAN201 to downgrade"
        verified = analyze_source(per_item, "m.py").verified_lines()
        assert all(("m.py", f.line) in verified for f in lint)

        lint = [
            f for f in lint_source(CHUNK_SAFE, "m.py") if f.code == "SAN101"
        ]
        assert lint, "expected a SAN101 at the chunk-loop store"
        verified = analyze_source(CHUNK_SAFE, "m.py").verified_lines()
        assert all(("m.py", f.line) in verified for f in lint)


# ======================================================================
# effect signatures (SAN404 / SAN405) + baseline
# ======================================================================


class TestEffects:
    def test_all_registered_kernels_inferred(self):
        from repro.sanitizer.kernels import KERNELS

        inferred = infer_kernel_effects()
        assert set(inferred) == set(KERNELS)

    def test_declared_matches_inferred_zero_drift(self):
        findings, _ = check_kernel_effects()
        assert findings == []

    def test_pkc_signature_content(self):
        sig = infer_kernel_effects(["pkc"])["pkc"]
        assert "coreness" in sig.writes
        assert "degree" in sig.atomics
        assert "indptr" in sig.reads

    def test_undeclared_effect_is_san404_error(self):
        declared = {"pkc": EffectSignature()}
        findings, _ = check_kernel_effects(declared, names=["pkc"])
        codes = {(f.code, f.severity) for f in findings}
        assert ("SAN404", "error") in codes

    def test_stale_declaration_is_san405_warning(self):
        sig = infer_kernel_effects(["pkc"])["pkc"]
        declared = {
            "pkc": EffectSignature(
                reads=sig.reads,
                writes=sig.writes + ("ghost_array",),
                atomics=sig.atomics,
            )
        }
        findings, _ = check_kernel_effects(declared, names=["pkc"])
        assert [(f.code, f.severity) for f in findings] == [
            ("SAN405", "warning")
        ]
        assert "ghost_array" in findings[0].message

    def test_baseline_suppresses_by_key(self, tmp_path):
        declared = {"pkc": EffectSignature()}
        findings, _ = check_kernel_effects(declared, names=["pkc"])
        baseline = {f.key: "known drift, tracked in tests" for f in findings}
        active, suppressed = apply_baseline(findings, baseline)
        assert not active
        assert len(suppressed) == len(findings)

    def test_load_baseline_roundtrip(self, tmp_path):
        p = tmp_path / "b.json"
        p.write_text(
            json.dumps(
                {"version": 1, "entries": {"SAN404:x:writes:y": "why"}}
            )
        )
        assert load_baseline(p) == {"SAN404:x:writes:y": "why"}

    def test_load_missing_explicit_baseline_raises(self, tmp_path):
        with pytest.raises(OSError):
            load_baseline(tmp_path / "absent.json")

    def test_committed_baseline_reasons_nonempty(self):
        # the committed baseline must stay reason-annotated
        for key, reason in load_baseline().items():
            assert reason.strip(), key


# ======================================================================
# seeded-bug selftest
# ======================================================================


class TestSelftest:
    def test_flow_selftest_catches_both_seeded_bugs(self):
        ok, message = flow_selftest()
        assert ok, message
        assert "SAN401" in message and "SAN403" in message


# ======================================================================
# SAN001 suppression hygiene
# ======================================================================


class TestSuppressionHygiene:
    def test_bare_marker_warns(self):
        findings = lint_source("x = 1  # sani: ok\n", "m.py")
        assert [(f.code, f.severity) for f in findings] == [
            ("SAN001", "warning")
        ]

    def test_reasoned_marker_clean(self):
        assert not lint_source("x = 1  # sani: ok - scatter proof\n", "m.py")

    def test_marker_with_dash_but_no_reason_warns(self):
        findings = lint_source("x = 1  # sani: ok -\n", "m.py")
        assert [f.code for f in findings] == ["SAN001"]

    def test_marker_inside_string_ignored(self):
        assert not lint_source('M = "# sani: ok"\n', "m.py")

    def test_bare_marker_cannot_suppress_itself(self):
        # the marker line is in the suppressed set, but SAN001 must
        # still fire for it
        findings = lint_source("y = 2  # sani: ok\n", "m.py")
        assert findings


# ======================================================================
# CLI surface
# ======================================================================


class TestSanitizeCLI:
    def test_missing_lint_path_exits_2(self, capsys):
        rc = cli_main(["sanitize", "--lint", "no/such/dir"])
        assert rc == 2
        assert "no such lint path: no/such/dir" in capsys.readouterr().err

    def test_strict_promotes_lint_warnings(self, tmp_path, capsys):
        warn = tmp_path / "warny.py"
        warn.write_text("x = 1  # sani: ok\n")
        assert cli_main(["sanitize", "--lint", str(warn)]) == 0
        capsys.readouterr()
        assert (
            cli_main(["sanitize", "--strict", "--lint", str(warn)]) == 1
        )

    def test_flow_clean_repo_exits_0(self, capsys):
        rc = cli_main(["sanitize", "--flow"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "== flow" in out
        assert "verified-disjoint" in out

    def test_flow_error_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad_flow.py"
        bad.write_text(
            "def run(pool, out, chunks):\n"
            "    def worker(chunk, ctx):\n"
            "        start, end = chunk\n"
            "        ctx.write(('out', int(start)))\n"
            "        for i in range(start, end):\n"
            "            out[i + 1] = i\n"
            "    pool.parallel_for(chunks, worker)\n"
        )
        rc = cli_main(["sanitize", "--flow", "--lint", str(bad)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "SAN403" in out

    def test_flow_warning_promoted_under_strict(self, tmp_path, capsys):
        warn = tmp_path / "nested.py"
        warn.write_text(
            "def run(pool, items, n):\n"
            "    def worker(v, ctx):\n"
            "        ctx.charge(1)\n"
            "        pool.parallel_for(range(n), lambda i, c: c.charge(1))\n"
            "    pool.parallel_for(items, worker)\n"
        )
        assert cli_main(["sanitize", "--flow", "--lint", str(warn)]) == 0
        capsys.readouterr()
        rc = cli_main(
            ["sanitize", "--flow", "--strict", "--lint", str(warn)]
        )
        assert rc == 1

    def test_missing_explicit_flow_baseline_exits_2(self, capsys):
        rc = cli_main(
            ["sanitize", "--flow", "--flow-baseline", "no/such.json"]
        )
        assert rc == 2
        assert "flow baseline" in capsys.readouterr().err

    def test_flow_downgrades_san201_in_lint_family(self, tmp_path, capsys):
        src = tmp_path / "plain.py"
        # bare item-indexed store, no ctx record: SAN201 without flow,
        # downgraded (and annotated) when the prover runs
        src.write_text(
            "def run(pool, out, items):\n"
            "    def worker(v, ctx):\n"
            "        out[v] = v\n"
            "    pool.parallel_for(items, worker)\n"
        )
        rc = cli_main(
            ["sanitize", "--strict", "--flow", "--lint", str(src)]
        )
        out = capsys.readouterr().out
        # SAN202 (no ctx call) still stands, so strict fails — but the
        # SAN201 must show as downgraded, not as an active warning
        assert "[downgraded: verified-disjoint]" in out
        assert rc == 1

    def test_report_json_includes_flow_section(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        rc = cli_main(
            ["sanitize", "--flow", "--report", str(report)]
        )
        assert rc == 0
        data = json.loads(report.read_text())
        assert "flow" in data
        assert data["flow"]["effects"]
        assert data["flow"]["verified_disjoint"]
