"""Tests for the additional core-decomposition engines.

Julienne/GBBS bucketing, the MPM distributed h-index iteration, and
(1+delta)-approximate threshold peeling — each against the
Batagelj-Zaversnik reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx import approx_core_decomposition
from repro.core.decomposition import core_decomposition
from repro.core.distributed import mpm_core_decomposition
from repro.core.julienne import julienne_core_decomposition
from repro.core.pkc import pkc_core_decomposition
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    erdos_renyi,
    star_graph,
)
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool

edge_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=19),
        st.integers(min_value=0, max_value=19),
    ),
    max_size=60,
)


class TestJulienne:
    @pytest.mark.parametrize("threads", [1, 4, 9])
    def test_matches_bz(self, threads, random_graph):
        truth = core_decomposition(random_graph)
        got = julienne_core_decomposition(
            random_graph, SimulatedPool(threads=threads)
        )
        assert np.array_equal(got, truth)

    def test_empty(self):
        assert julienne_core_decomposition(Graph.empty(0), SimulatedPool()).size == 0

    def test_isolated(self):
        g = Graph.from_edges([(0, 1)], num_vertices=4)
        got = julienne_core_decomposition(g, SimulatedPool(threads=2))
        assert np.array_equal(got, [1, 1, 0, 0])

    def test_complete(self):
        got = julienne_core_decomposition(complete_graph(6), SimulatedPool())
        assert np.array_equal(got, [5] * 6)

    @settings(max_examples=40, deadline=None)
    @given(edges=edge_lists, threads=st.integers(min_value=1, max_value=5))
    def test_property_random(self, edges, threads):
        g = Graph.from_edges(edges, num_vertices=20)
        truth = core_decomposition(g)
        got = julienne_core_decomposition(g, SimulatedPool(threads=threads))
        assert np.array_equal(got, truth)

    def test_work_efficient_vs_pkc_on_deep_graph(self):
        # high-kmax graph: PKC pays the n*kmax scans, Julienne does not
        g = barabasi_albert(500, 12, seed=0)
        pool_j = SimulatedPool(threads=1)
        julienne_core_decomposition(g, pool_j)
        pool_p = SimulatedPool(threads=1)
        pkc_core_decomposition(g, pool_p)
        assert pool_j.clock < pool_p.clock


class TestMpm:
    @pytest.mark.parametrize("threads", [1, 4])
    def test_matches_bz(self, threads, random_graph):
        truth = core_decomposition(random_graph)
        got, rounds = mpm_core_decomposition(
            random_graph, SimulatedPool(threads=threads)
        )
        assert np.array_equal(got, truth)
        assert rounds >= 1

    def test_star_converges_fast(self):
        got, rounds = mpm_core_decomposition(star_graph(10), SimulatedPool())
        assert np.array_equal(got, [1] * 11)
        assert rounds <= 3

    def test_round_bound(self):
        # it_MPM is far below n on real-ish graphs
        g = erdos_renyi(150, 0.05, seed=3)
        _, rounds = mpm_core_decomposition(g, SimulatedPool(threads=2))
        assert rounds < g.num_vertices / 2

    def test_empty(self):
        got, rounds = mpm_core_decomposition(Graph.empty(0), SimulatedPool())
        assert got.size == 0
        assert rounds == 0

    @settings(max_examples=30, deadline=None)
    @given(edges=edge_lists)
    def test_property_random(self, edges):
        g = Graph.from_edges(edges, num_vertices=20)
        got, _ = mpm_core_decomposition(g, SimulatedPool(threads=3))
        assert np.array_equal(got, core_decomposition(g))


class TestApprox:
    @pytest.mark.parametrize("delta", [0.25, 0.5, 1.0])
    def test_approximation_bounds(self, delta, random_graph):
        truth = core_decomposition(random_graph)
        est, phases = approx_core_decomposition(
            random_graph, SimulatedPool(threads=3), delta=delta
        )
        mask = truth >= 1
        assert np.all(est[mask] >= truth[mask])
        assert np.all(est[mask] < (1.0 + delta) * truth[mask] + 1e-9)
        assert np.all(est[~mask] == 0)
        assert phases >= 1

    def test_fewer_phases_with_larger_delta(self):
        g = barabasi_albert(300, 8, seed=1)
        _, tight = approx_core_decomposition(g, SimulatedPool(), delta=0.1)
        _, loose = approx_core_decomposition(g, SimulatedPool(), delta=1.0)
        assert loose < tight

    def test_invalid_delta(self, triangle):
        with pytest.raises(ValueError):
            approx_core_decomposition(triangle, SimulatedPool(), delta=0.0)

    def test_exact_on_uniform_graph(self):
        # every coreness is hit exactly at an integer threshold <= 1+delta
        got, _ = approx_core_decomposition(
            complete_graph(4), SimulatedPool(), delta=0.5
        )
        truth = core_decomposition(complete_graph(4))
        assert np.all(got >= truth)

    @settings(max_examples=30, deadline=None)
    @given(edges=edge_lists, delta=st.floats(min_value=0.1, max_value=2.0))
    def test_property_bounds(self, edges, delta):
        g = Graph.from_edges(edges, num_vertices=20)
        truth = core_decomposition(g)
        est, _ = approx_core_decomposition(g, SimulatedPool(), delta=delta)
        mask = truth >= 1
        assert np.all(est[mask] >= truth[mask])
        assert np.all(est[mask] < (1.0 + delta) * truth[mask] + 1e-9)
