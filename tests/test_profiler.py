"""SimProf span tracer: zero perturbation, coverage, exports, CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.graph.io import write_edge_list
from repro.parallel.atomics import AtomicArray
from repro.parallel.scheduler import SchedulerError, SimulatedPool
from repro.pipeline import search_best_core
from repro.profiler import (
    SpanTracer,
    check_kernel,
    chrome_trace,
    flame_summary,
    profile_report,
    selftest,
    write_artifacts,
)
from repro.sanitizer.kernels import KERNELS


def _traced_pipeline(graph, metric="average_degree", threads=4):
    pool = SimulatedPool(threads=threads)
    tracer = SpanTracer()
    tracer.attach(pool)
    result, deco = search_best_core(graph, metric, pool=pool, parallel=True)
    tracer.detach()
    return tracer, pool, result


class TestZeroPerturbation:
    def test_selftest_passes(self):
        ok, message = selftest(threads=4)
        assert ok, message

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_every_kernel_clock_identical(self, name):
        # raises AssertionError on any nonzero clock delta
        check_kernel(KERNELS[name], threads=4)

    def test_pipeline_clock_identical(self, paper_like_graph):
        bare, _ = search_best_core(
            paper_like_graph, "average_degree", threads=4, parallel=True
        )
        tracer, pool, traced = _traced_pipeline(paper_like_graph)
        _, bare_deco = search_best_core(
            paper_like_graph, "average_degree", threads=4, parallel=True
        )
        assert pool.clock == bare_deco.pool.clock
        assert traced.best_k == bare.best_k


class TestSpanTree:
    def test_phases_nest_regions(self):
        pool = SimulatedPool(threads=2)
        tracer = SpanTracer()
        tracer.attach(pool)
        with pool.phase("outer"):
            with pool.phase("inner"):
                pool.parallel_for([0, 1], lambda x, ctx: ctx.charge(5))
            with pool.serial_region("setup") as ctx:
                ctx.charge(3)
        tracer.detach()
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.kind == "phase" and outer.name == "outer"
        kinds = [c.kind for c in outer.children]
        assert kinds == ["phase", "serial"]
        inner = outer.children[0]
        assert inner.children[0].kind == "parallel"

    def test_total_elapsed_bitwise_equals_clock(self, paper_like_graph):
        tracer, pool, _ = _traced_pipeline(paper_like_graph)
        # not approx: the spans store the scheduler's floats verbatim
        assert tracer.total_elapsed() == pool.clock

    def test_cost_decomposition_sums_to_elapsed(self, paper_like_graph):
        tracer, pool, _ = _traced_pipeline(paper_like_graph)
        for span in tracer.region_spans():
            assert sum(span.costs.values()) == pytest.approx(span.elapsed)
            assert span.costs["work"] >= 0.0

    def test_serial_regions_carry_no_parallel_overheads(self):
        pool = SimulatedPool(threads=8)
        tracer = SpanTracer()
        tracer.attach(pool)
        with pool.serial_region("s") as ctx:
            ctx.charge(7)
        tracer.detach()
        (span,) = tracer.region_spans()
        assert span.costs["spawn"] == 0.0
        assert span.costs["barrier"] == 0.0
        assert span.elapsed == pytest.approx(7.0)

    def test_imbalance_factor(self):
        pool = SimulatedPool(threads=2)
        tracer = SpanTracer()
        tracer.attach(pool)
        # item 0 does all the work -> thread 0 gets everything
        pool.parallel_for(
            [0, 1], lambda x, ctx: ctx.charge(100 if x == 0 else 0)
        )
        tracer.detach()
        (span,) = tracer.region_spans()
        assert span.imbalance == pytest.approx(2.0)

    def test_phase_inside_region_rejected(self):
        pool = SimulatedPool(threads=1)
        with pytest.raises(SchedulerError):
            with pool.serial_region("r"):
                with pool.phase("p"):
                    pass


class TestContentionAttribution:
    def _contended_run(self):
        pool = SimulatedPool(threads=4)
        tracer = SpanTracer()
        tracer.attach(pool)
        arr = AtomicArray(1, dtype=np.float64, name="hot")
        # store() is CAS-style publication: it contends, unlike the
        # relaxed fetch-add
        with pool.phase("hammer"):
            pool.parallel_for(
                range(8), lambda i, ctx: arr.store(ctx, 0, float(i))
            )
        tracer.detach()
        return tracer, pool

    def test_hot_location_reported(self):
        tracer, pool = self._contended_run()
        (span,) = tracer.region_spans()
        assert span.contention, "all threads hit one cache line"
        ((loc, (ops, queued)),) = span.contention.items()
        assert ops == 8 and queued > 0

    def test_penalty_matches_scheduler(self):
        tracer, pool = self._contended_run()
        (span,) = tracer.region_spans()
        contended = pool.cost_model.contended_atomic_cost
        total_queued = sum(q for _, q in span.contention.values())
        assert total_queued * contended == pytest.approx(
            span.costs["contention"]
        )

    def test_report_surfaces_hot_lines(self):
        tracer, pool = self._contended_run()
        report = profile_report(tracer, pool)
        (phase,) = [p for p in report["phases"] if p["path"] == "hammer"]
        assert phase["hot_locations"]
        hot = phase["hot_locations"][0]
        assert hot["queued"] > 0 and hot["penalty"] > 0


class TestExports:
    def test_chrome_trace_region_durations_sum_to_clock(
        self, paper_like_graph
    ):
        tracer, pool, _ = _traced_pipeline(paper_like_graph)
        trace = chrome_trace(tracer, pool)
        region_durs = [
            e["dur"]
            for e in trace["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "region"
        ]
        assert sum(region_durs) == pytest.approx(pool.clock)
        assert trace["otherData"]["clock"] == pool.clock
        json.dumps(trace)  # must serialize

    def test_trace_has_vthread_lanes(self, paper_like_graph):
        tracer, pool, _ = _traced_pipeline(paper_like_graph)
        trace = chrome_trace(tracer, pool)
        tids = {e["tid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert 0 in tids and 1 in tids

    def test_profile_report_schema(self, paper_like_graph):
        tracer, pool, _ = _traced_pipeline(paper_like_graph)
        report = profile_report(tracer, pool)
        assert report["schema"] == "simprof/v1"
        assert report["totals"]["region_elapsed_sum"] == pool.clock
        paths = [p["path"] for p in report["phases"]]
        assert any(p.startswith("core-decomposition") for p in paths)
        assert any(p.startswith("search/pbks:") for p in paths)
        # phase elapsed values partition the clock (up to float assoc.)
        assert sum(p["elapsed"] for p in report["phases"]) == pytest.approx(
            pool.clock
        )

    def test_flame_summary_renders(self, paper_like_graph):
        tracer, pool, _ = _traced_pipeline(paper_like_graph)
        text = flame_summary(profile_report(tracer, pool))
        assert "SimProf" in text
        assert "core-decomposition" in text
        assert "phase" in text  # the table header

    def test_write_artifacts(self, paper_like_graph, tmp_path):
        tracer, pool, _ = _traced_pipeline(paper_like_graph)
        paths = write_artifacts(tracer, pool, tmp_path, prefix="t.")
        assert paths["profile"].name == "t.profile.json"
        assert paths["trace"].name == "t.trace.json"
        profile = json.loads(paths["profile"].read_text())
        trace = json.loads(paths["trace"].read_text())
        assert profile["clock"] == pool.clock
        assert trace["otherData"]["clock"] == pool.clock


class TestCli:
    def test_profile_selftest_exit_zero(self, capsys):
        assert cli_main(["profile", "--selftest"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_profile_run_writes_artifacts(
        self, paper_like_graph, tmp_path, capsys
    ):
        edges = tmp_path / "g.txt"
        write_edge_list(paper_like_graph, edges)
        out_dir = tmp_path / "prof"
        code = cli_main(
            [
                "profile",
                "--input",
                str(edges),
                "--threads",
                "4",
                "--out",
                str(out_dir),
            ]
        )
        assert code == 0
        assert (out_dir / "profile.json").exists()
        assert (out_dir / "trace.json").exists()
        assert "SimProf" in capsys.readouterr().out
