"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.core.decomposition import core_decomposition
from repro.errors import GraphBuildError
from repro.graph.generators import (
    CoreChainResult,
    barabasi_albert,
    complete_graph,
    core_chain,
    cycle_graph,
    erdos_renyi,
    planted_partition,
    powerlaw_cluster,
    rmat,
    star_graph,
)


class TestErdosRenyi:
    def test_deterministic(self):
        assert erdos_renyi(50, 0.1, seed=3) == erdos_renyi(50, 0.1, seed=3)

    def test_seed_changes_graph(self):
        assert erdos_renyi(50, 0.1, seed=1) != erdos_renyi(50, 0.1, seed=2)

    def test_p_zero(self):
        assert erdos_renyi(10, 0.0).num_edges == 0

    def test_p_one_complete(self):
        g = erdos_renyi(8, 1.0)
        assert g.num_edges == 28

    def test_edge_count_near_expectation(self):
        g = erdos_renyi(200, 0.05, seed=0)
        expected = 0.05 * 200 * 199 / 2
        assert 0.7 * expected < g.num_edges < 1.3 * expected

    def test_invalid_p(self):
        with pytest.raises(GraphBuildError):
            erdos_renyi(10, 1.5)

    def test_tiny_n(self):
        assert erdos_renyi(0, 0.5).num_vertices == 0
        assert erdos_renyi(1, 0.5).num_edges == 0


class TestBarabasiAlbert:
    def test_deterministic(self):
        assert barabasi_albert(60, 3, seed=5) == barabasi_albert(60, 3, seed=5)

    def test_edge_count(self):
        g = barabasi_albert(60, 3, seed=0)
        # m0 star (3 edges) + 56 vertices * 3 links, minus dedup losses
        assert g.num_edges == 3 + 56 * 3

    def test_connected(self):
        g = barabasi_albert(80, 2, seed=1)
        assert len(np.unique(g.connected_components())) == 1

    def test_min_degree(self):
        g = barabasi_albert(80, 4, seed=2)
        assert int(g.degrees().min()) >= 4 - 1  # hub star leaves have m'=1... relaxed

    def test_invalid_params(self):
        with pytest.raises(GraphBuildError):
            barabasi_albert(3, 5)
        with pytest.raises(GraphBuildError):
            barabasi_albert(10, 0)


class TestPowerlawCluster:
    def test_deterministic(self):
        a = powerlaw_cluster(70, 3, 0.4, seed=9)
        b = powerlaw_cluster(70, 3, 0.4, seed=9)
        assert a == b

    def test_triangle_prob_raises_clustering(self):
        from repro.graph.properties import triangle_count

        low = powerlaw_cluster(150, 3, 0.0, seed=4)
        high = powerlaw_cluster(150, 3, 0.9, seed=4)
        assert triangle_count(high) > triangle_count(low)

    def test_invalid_triangle_prob(self):
        with pytest.raises(GraphBuildError):
            powerlaw_cluster(10, 2, 1.5)


class TestRmat:
    def test_deterministic(self):
        assert rmat(8, 4, seed=7) == rmat(8, 4, seed=7)

    def test_vertex_count(self):
        assert rmat(8, 4, seed=0).num_vertices == 256

    def test_skewed_degrees(self):
        g = rmat(10, 8, seed=1)
        deg = g.degrees()
        assert deg.max() > 10 * max(1.0, float(np.median(deg[deg > 0])))

    def test_invalid_scale(self):
        with pytest.raises(GraphBuildError):
            rmat(0, 4)

    def test_invalid_probabilities(self):
        with pytest.raises(GraphBuildError):
            rmat(5, 4, a=0.9, b=0.2, c=0.2)


class TestPlantedPartition:
    def test_deterministic(self):
        a = planted_partition(4, 20, 0.4, 0.01, seed=2)
        b = planted_partition(4, 20, 0.4, 0.01, seed=2)
        assert a == b

    def test_size(self):
        g = planted_partition(3, 15, 0.5, 0.02, seed=0)
        assert g.num_vertices == 45

    def test_blocks_denser_than_cross(self):
        g = planted_partition(3, 30, 0.5, 0.01, seed=1)
        inside = cross = 0
        for u, v in g.edges():
            if u // 30 == v // 30:
                inside += 1
            else:
                cross += 1
        assert inside > 3 * cross

    def test_invalid(self):
        with pytest.raises(GraphBuildError):
            planted_partition(0, 10, 0.5, 0.1)


class TestFixedShapes:
    def test_complete_graph_coreness(self):
        g = complete_graph(6)
        assert np.array_equal(core_decomposition(g), [5] * 6)

    def test_cycle_coreness(self):
        g = cycle_graph(7)
        assert np.array_equal(core_decomposition(g), [2] * 7)

    def test_cycle_too_small(self):
        with pytest.raises(GraphBuildError):
            cycle_graph(2)

    def test_star_coreness(self):
        g = star_graph(5)
        assert np.array_equal(core_decomposition(g), [1] * 6)


class TestCoreChain:
    def test_returns_ground_truth(self, chain_result):
        assert isinstance(chain_result, CoreChainResult)
        assert chain_result.tree_nodes  # non-empty
        assert len(chain_result.parents) == len(chain_result.tree_nodes)

    def test_tree_nodes_partition_vertices(self, chain_result):
        seen = set()
        for _, verts in chain_result.tree_nodes:
            assert not (seen & verts)
            seen |= verts
        assert seen == set(range(chain_result.graph.num_vertices))

    def test_node_coreness_matches_members(self, chain_result):
        for k, verts in chain_result.tree_nodes:
            for v in verts:
                assert chain_result.coreness[v] == k

    def test_parent_coreness_lower(self, chain_result):
        nodes = chain_result.tree_nodes
        for idx, pa in enumerate(chain_result.parents):
            if pa >= 0:
                assert nodes[pa][0] < nodes[idx][0]

    def test_designed_corenesses_present(self):
        res = core_chain([[6, 4, 2]])
        present = set(int(k) for k in np.unique(res.coreness))
        assert {6, 4, 2} <= present

    def test_invalid_branches(self):
        with pytest.raises(GraphBuildError):
            core_chain([[2, 3]])  # not decreasing
        with pytest.raises(GraphBuildError):
            core_chain([[]])
        with pytest.raises(GraphBuildError):
            core_chain([[0]])

    def test_default_branches(self):
        res = core_chain()
        assert res.graph.num_vertices > 0
