"""SimDist SAN6xx: distributed-protocol certification tests.

Covers the in-tree certification (both cluster protocols must pass),
the seeded selftest's exact line attribution, the committed-manifest
drift detection, the wire-schema comparison (SAN604/605) on a
synthetic cluster module, and the monotonicity / phase / replay
judgements on standalone protocol sources.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.sanitizer.dist import (
    DEFAULT_DIST_MANIFEST_PATH,
    DistAnalyzer,
    analyze_dist,
    analyze_protocol_source,
    diff_dist_manifest,
    dist_manifest_payload,
    dist_selftest,
    load_dist_manifest,
    verify_dist_manifest,
    write_dist_manifest,
)
from repro.sanitizer.flow import ModuleIndex, ModuleInfo


# ----------------------------------------------------------------------
# in-tree certification
# ----------------------------------------------------------------------

class TestInTree:
    def test_cluster_layer_certifies(self):
        report = analyze_dist()
        assert not report.findings, [str(f) for f in report.findings]
        assert report.certified == ["decompose", "serve"]
        for cert in report.certificates.values():
            assert cert.status == "certified"

    def test_every_cluster_kernel_classified(self):
        report = analyze_dist()
        assert report.kernels["cluster_decompose"] == "decompose"
        assert report.kernels["cluster_serve"] == "serve"
        assert "unclassified" not in report.kernels.values()

    def test_decompose_obligations(self):
        cert = analyze_dist().certificates["decompose"]
        assert "monotone:updates" in cert.obligations
        assert "phase:sends" in cert.obligations
        assert "ownership:partition" in cert.obligations
        assert any(k.startswith("replay:") for k in cert.obligations)
        # the exchange send is derived with the real wire constants
        (site,) = cert.sends.values()
        assert site["header_bytes"] == 16
        assert site["per_item_bytes"] == 8

    def test_serve_recovery_rebuilds(self):
        cert = analyze_dist().certificates["serve"]
        assert "HCDService" in cert.obligations["phase:recovery-rebuild"]
        assert len(cert.sends) == 2

    def test_committed_manifest_in_sync(self):
        ok, message = verify_dist_manifest()
        assert ok, message
        assert "manifest in sync" in message


# ----------------------------------------------------------------------
# seeded selftest
# ----------------------------------------------------------------------

class TestSelftest:
    def test_selftest_passes(self):
        ok, message = dist_selftest()
        assert ok, message
        assert "SAN601" in message and "SAN602" in message

    def test_planted_lines_attributed_exactly(self):
        from repro.sanitizer.dist import (
            _NONMONO_LINE,
            _NONMONO_SOURCE,
            _PHASE_LINE,
            _PHASE_SOURCE,
            _SELFTEST_PROTOCOL,
        )

        report = analyze_protocol_source(
            _NONMONO_SOURCE, _SELFTEST_PROTOCOL
        )
        (finding,) = report.findings
        assert (finding.code, finding.line) == ("SAN601", _NONMONO_LINE)
        report = analyze_protocol_source(_PHASE_SOURCE, _SELFTEST_PROTOCOL)
        (finding,) = report.findings
        assert (finding.code, finding.line) == ("SAN602", _PHASE_LINE)


# ----------------------------------------------------------------------
# monotonicity / phase / replay judgements on standalone sources
# ----------------------------------------------------------------------

_PROTOCOL = {
    "name": "toy",
    "kernels": (),
    "estimates": ("est",),
    "live": ("est",),
    "compute_roots": (),
    "send_scopes": (),
    "recovery_roots": (),
    "rebuild_calls": (),
    "handler_roots": ("exchange",),
    "metrics": ("hops",),
    "lww": ("label",),
}

_TEMPLATE = """\
import numpy as np

def driver(cluster, est, results):
    committed = est.copy()

    def exchange():
        for s in sorted(results):
            ids, vals = results[s]
            {update}
    cluster.superstep("step", {{}}, exchange)
"""


def _judge(update: str):
    return analyze_protocol_source(
        _TEMPLATE.format(update=update), _PROTOCOL
    )


class TestMonotonicity:
    def test_min_combining_certifies(self):
        report = _judge("est[ids] = np.minimum(est[ids], vals)")
        assert not report.findings
        assert report.certificates["toy"].status == "certified"

    def test_augmented_increase_flagged(self):
        # the in-place increase violates both monotonicity and replay
        # safety (a re-delivered message would apply the delta twice)
        report = _judge("est[ids] += vals")
        codes = [f.code for f in report.findings]
        assert "SAN601" in codes

    def test_max_combining_flagged(self):
        report = _judge("est[ids] = np.maximum(est[ids], vals)")
        assert [f.code for f in report.findings] == ["SAN601"]
        assert "monotone" in report.findings[0].message

    def test_transport_of_estimate_certifies(self):
        # pure transport: storing estimate-derived values verbatim
        report = _judge("est[ids] = est[ids]")
        assert not report.findings

    def test_missing_freeze_flagged(self):
        source = _TEMPLATE.format(
            update="est[ids] = np.minimum(est[ids], vals)"
        ).replace("    committed = est.copy()\n", "")
        report = analyze_protocol_source(source, _PROTOCOL)
        assert any(f.code == "SAN602" for f in report.findings)
        cert = report.certificates["toy"]
        assert cert.obligations["phase:freeze"].startswith("VIOLATED")


class TestReplay:
    def test_metric_and_lww_writes_allowed(self):
        report = _judge(
            "est[ids] = np.minimum(est[ids], vals); "
            "cluster.hops = cluster.hops + 1; cluster.label = s"
        )
        assert not report.findings
        summary = report.certificates["toy"].handlers["driver.exchange"]
        assert "metric=1" in summary and "lww=2" in summary

    def test_non_idempotent_handler_write_flagged(self):
        report = _judge(
            "est[ids] = np.minimum(est[ids], vals); "
            "cluster.journal = vals"
        )
        assert any(f.code == "SAN606" for f in report.findings)


# ----------------------------------------------------------------------
# wire schemas (SAN604/605) on a synthetic cluster module
# ----------------------------------------------------------------------

_TOY_CLUSTER = """\
DIST_PROTOCOL = {
    "name": "toy",
    "kernels": ("cluster_toy",),
    "estimates": (),
    "live": (),
    "compute_roots": (),
    "send_scopes": ("pump",),
    "recovery_roots": (),
    "rebuild_calls": (),
    "handler_roots": (),
    "metrics": (),
    "lww": (),
}

def pump(network, ids):
    network.send(0, 1, 16 + 8 * len(ids))
"""


def _toy_index(schemas: dict) -> ModuleIndex:
    index = ModuleIndex()
    kernels_src = (
        f"MESSAGE_SCHEMAS = {schemas!r}\n"
        "KERNELS: dict = {}\n"
    )
    for name, path, src in [
        ("repro.cluster.toy", "<toy>", _TOY_CLUSTER),
        ("repro.sanitizer.kernels", "<toy-kernels>", kernels_src),
    ]:
        info = ModuleInfo(name, path, src)
        index.modules[name] = info
        index.by_path[path] = info
    return index


_GOOD_SCHEMA = {
    "cluster_toy": {
        "toy.pump#1": {
            "header_bytes": 16,
            "per_item_bytes": 8,
            "count": "len(ids)",
            "unit": "toy item",
        },
    },
}


class TestWireSchemas:
    def test_matching_declaration_certifies(self):
        report = DistAnalyzer(_toy_index(_GOOD_SCHEMA)).analyze()
        assert not report.findings, [str(f) for f in report.findings]
        assert report.certificates["toy"].status == "certified"
        assert report.certificates["toy"].sends["toy.pump#1"] == {
            "header_bytes": 16,
            "per_item_bytes": 8,
            "count": "len(ids)",
        }

    def test_undeclared_send_is_san604(self):
        report = DistAnalyzer(_toy_index({})).analyze()
        codes = [f.code for f in report.findings]
        assert "SAN604" in codes
        assert report.certificates["toy"].status == "violations"

    def test_field_mismatch_is_san604(self):
        bad = {
            "cluster_toy": {
                "toy.pump#1": {
                    "header_bytes": 16,
                    "per_item_bytes": 4,
                    "count": "len(ids)",
                },
            },
        }
        report = DistAnalyzer(_toy_index(bad)).analyze()
        san604 = [f for f in report.findings if f.code == "SAN604"]
        assert san604 and "per_item_bytes" in san604[0].message

    def test_stale_declaration_is_san605_warning(self):
        stale = {
            "cluster_toy": {
                "toy.pump#1": _GOOD_SCHEMA["cluster_toy"]["toy.pump#1"],
                "toy.pump#2": {
                    "header_bytes": 16,
                    "per_item_bytes": 8,
                    "count": "len(ids)",
                },
            },
        }
        report = DistAnalyzer(_toy_index(stale)).analyze()
        assert [f.code for f in report.findings] == ["SAN605"]
        assert report.findings[0].severity == "warning"
        # a stale declaration does not void the protocol's certificate
        assert report.certificates["toy"].status == "certified"


# ----------------------------------------------------------------------
# manifest round-trip + tamper detection
# ----------------------------------------------------------------------

class TestManifest:
    def test_round_trip_in_sync(self, tmp_path):
        report = analyze_dist()
        path = write_dist_manifest(report, tmp_path / "dist.json")
        committed = load_dist_manifest(path)
        assert committed["schema"] == "dist-manifest/v1"
        assert diff_dist_manifest(
            dist_manifest_payload(report), committed
        ) == []

    def test_missing_manifest_names_the_fix(self):
        report = analyze_dist()
        lines = diff_dist_manifest(dist_manifest_payload(report), None)
        assert lines and "--write-manifest" in lines[0]

    def test_protocol_field_tamper_detected(self, tmp_path):
        report = analyze_dist()
        path = write_dist_manifest(report, tmp_path / "dist.json")
        committed = json.loads(path.read_text())
        committed["protocols"]["decompose"]["status"] = "violations"
        lines = diff_dist_manifest(
            dist_manifest_payload(report), committed
        )
        assert any(
            "decompose" in line and "status" in line for line in lines
        )

    def test_message_schema_tamper_detected(self, tmp_path):
        report = analyze_dist()
        path = write_dist_manifest(report, tmp_path / "dist.json")
        committed = json.loads(path.read_text())
        committed["message_schemas"]["cluster_decompose"] = {}
        lines = diff_dist_manifest(
            dist_manifest_payload(report), committed
        )
        assert any("message_schemas" in line for line in lines)

    def test_tampered_manifest_fails_verify(self, tmp_path):
        report = analyze_dist()
        path = write_dist_manifest(report, tmp_path / "dist.json")
        committed = json.loads(path.read_text())
        del committed["protocols"]["serve"]
        path.write_text(json.dumps(committed))
        ok, message = verify_dist_manifest(path)
        assert not ok
        assert "serve" in message

    def test_committed_manifest_file_exists(self):
        assert DEFAULT_DIST_MANIFEST_PATH.exists()
        payload = load_dist_manifest()
        assert set(payload["protocols"]) == {"decompose", "serve"}


# ----------------------------------------------------------------------
# CLI exit contract
# ----------------------------------------------------------------------

class TestCli:
    def test_dist_gate_clean(self, capsys):
        assert cli_main(["sanitize", "--dist"]) == 0
        out = capsys.readouterr().out
        assert "SimDist SAN6xx" in out
        assert "== OK ==" in out

    def test_dist_strict_clean(self):
        assert cli_main(["sanitize", "--strict", "--dist"]) == 0

    def test_dist_selftest_via_cli(self, capsys):
        assert cli_main(["sanitize", "--dist", "--selftest"]) == 0
        assert "[dist]" in capsys.readouterr().out

    def test_dist_report_json(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert (
            cli_main(["sanitize", "--dist", "--report", str(out)]) == 0
        )
        payload = json.loads(out.read_text())
        assert payload["schema"] == "sanitize-report/v1"
        assert set(payload["dist"]["certificates"]) == {
            "decompose",
            "serve",
        }
        assert payload["dist"]["drift"] == []
        assert payload["dist"]["kernels"]["cluster_decompose"] == (
            "decompose"
        )

    def test_usage_error_is_exit_2(self, capsys):
        assert cli_main(["sanitize", "--dist", "--threads", "0"]) == 2
