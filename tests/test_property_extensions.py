"""Property-based tests for the extension modules (truss, ecc)."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import k_edge_connected_components
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool
from repro.truss.decomposition import EdgeIndex, truss_decomposition
from repro.truss.hierarchy import truss_hierarchy

MAX_N = 14

edge_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=MAX_N - 1),
        st.integers(min_value=0, max_value=MAX_N - 1),
    ),
    max_size=45,
)


def build(edges) -> Graph:
    return Graph.from_edges(edges, num_vertices=MAX_N)


def to_nx(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from(graph.edges())
    return g


@settings(max_examples=40, deadline=None)
@given(edges=edge_lists)
def test_trussness_matches_networkx(edges):
    g = build(edges)
    index = EdgeIndex(g)
    trussness = truss_decomposition(g, index)
    tmax = int(trussness.max()) if len(index) else 2
    for k in range(2, tmax + 1):
        mine = {
            tuple(int(x) for x in index.edges[e])
            for e in np.flatnonzero(trussness >= k)
        }
        theirs = {tuple(sorted(e)) for e in nx.k_truss(to_nx(g), k).edges()}
        assert mine == theirs


@settings(max_examples=30, deadline=None)
@given(edges=edge_lists, threads=st.integers(min_value=1, max_value=4))
def test_truss_hierarchy_invariants(edges, threads):
    g = build(edges)
    index = EdgeIndex(g)
    trussness = truss_decomposition(g, index)
    th = truss_hierarchy(
        g, trussness, SimulatedPool(threads=threads), index=index
    )
    th.validate(g, trussness)
    # partition + parent monotonicity are inside validate; additionally
    # every reconstructed community's edges share one trussness floor
    for node in range(th.num_nodes):
        k = int(th.node_trussness[node])
        edges_of = th.reconstruct_truss(node)
        assert np.all(trussness[edges_of] >= k)


@settings(max_examples=25, deadline=None)
@given(edges=edge_lists, k=st.integers(min_value=1, max_value=4))
def test_ecc_matches_networkx_subgraphs(edges, k):
    g = build(edges)
    mine = {frozenset(c) for c in k_edge_connected_components(g, k)}
    theirs = {frozenset(c) for c in nx.k_edge_subgraphs(to_nx(g), k)}
    assert mine == theirs


@settings(max_examples=25, deadline=None)
@given(edges=edge_lists)
def test_ecc_nesting(edges):
    """(k+1)-ECCs refine k-ECCs."""
    g = build(edges)
    previous = {frozenset(c) for c in k_edge_connected_components(g, 1)}
    for k in range(2, 5):
        current = {frozenset(c) for c in k_edge_connected_components(g, k)}
        for comp in current:
            assert any(comp <= prev for prev in previous)
        previous = current
