"""End-to-end integration tests spanning the whole library surface."""

import numpy as np
import pytest

from repro import (
    DynamicGraph,
    Graph,
    HCD,
    InfluentialCommunityIndex,
    SimulatedPool,
    decompose,
    search_best_core,
)
from repro.analysis.report import analysis_report
from repro.core.decomposition import core_decomposition
from repro.graph.generators import powerlaw_cluster
from repro.graph.io import read_edge_list, save_npz, load_npz, write_edge_list
from repro.search.metrics import metric_names


@pytest.fixture(scope="module")
def workload():
    return powerlaw_cluster(180, 3, 0.4, seed=21)


class TestFullPipeline:
    def test_io_decompose_persist_reload_search(self, tmp_path, workload):
        """The adoption path: file in, index out, reload, query."""
        # 1. write and re-read the graph
        edge_path = tmp_path / "graph.txt"
        write_edge_list(workload, edge_path)
        graph = read_edge_list(edge_path)
        assert graph == workload

        # 2. decompose in parallel, validate, persist the index
        deco = decompose(graph, threads=6)
        deco.hcd.validate(graph, deco.coreness)
        index_path = tmp_path / "index.npz"
        deco.hcd.save(index_path)
        graph_path = tmp_path / "graph.npz"
        save_npz(graph, graph_path)

        # 3. a "new session": reload both, run a search, answers match
        graph2 = load_npz(graph_path)
        hcd2 = HCD.load(index_path)
        result, _ = search_best_core(graph2, "conductance", threads=6)
        from repro.search.bks import bks_search

        direct = bks_search(graph2, core_decomposition(graph2), hcd2, "conductance")
        assert result.best_score == pytest.approx(direct.best_score)

    def test_every_metric_end_to_end(self, workload):
        """All registered metrics run through the full parallel stack."""
        for metric in metric_names():
            result, deco = search_best_core(workload, metric, threads=4)
            assert result.best_node >= 0
            members = result.best_members()
            assert members.size >= 1
            assert np.all(deco.coreness[members] >= result.best_k)

    def test_dynamic_then_static_agree(self, workload):
        """Mutating a DynamicGraph and re-running the static stack."""
        dyn = DynamicGraph(workload)
        rng = np.random.default_rng(3)
        inserted = []
        for _ in range(15):
            u, v = sorted(int(x) for x in rng.integers(0, workload.num_vertices, 2))
            if u != v and not dyn.has_edge(u, v):
                dyn.insert_edge(u, v)
                inserted.append((u, v))
        static = decompose(dyn.to_graph(), threads=3)
        assert np.array_equal(static.coreness, dyn.coreness)
        assert static.hcd.equivalent_to(dyn.hcd(threads=3))

    def test_influence_on_fresh_decomposition(self, workload):
        deco = decompose(workload, threads=2)
        weights = workload.degrees().astype(float)
        index = InfluentialCommunityIndex(deco.hcd, weights)
        top = index.top_r(3, 2)
        for answer in top:
            members = index.members(answer)
            assert float(weights[members].min()) == pytest.approx(answer.influence)

    def test_report_renders_for_arbitrary_graph(self, workload):
        text = analysis_report(workload, threads=2, metrics=["average_degree"])
        assert "== graph ==" in text
        assert "== hierarchy ==" in text
        assert "average_degree" in text

    def test_thread_count_never_changes_any_answer(self, workload):
        baselines = {}
        for metric in ("average_degree", "clustering_coefficient"):
            result, _ = search_best_core(workload, metric, threads=1, parallel=True)
            baselines[metric] = result.best_score
        for threads in (3, 12, 40):
            for metric, expected in baselines.items():
                result, _ = search_best_core(
                    workload, metric, threads=threads, parallel=True
                )
                assert result.best_score == pytest.approx(expected)


class TestCrossSubstrateConsistency:
    def test_truss_and_core_agree_on_cliques(self):
        """On a planted clique, core, truss, and ECC all isolate it."""
        from repro.ecc import k_edge_connected_components
        from repro.truss import EdgeIndex, truss_decomposition

        rng = np.random.default_rng(9)
        base = powerlaw_cluster(80, 2, 0.2, seed=9)
        clique = list(range(80, 88))
        edges = list(base.edges())
        edges += [(u, v) for u in clique for v in clique if u < v]
        g = Graph.from_edges(edges, num_vertices=88)
        del rng

        coreness = core_decomposition(g)
        assert np.all(coreness[clique] >= 7)

        index = EdgeIndex(g)
        trussness = truss_decomposition(g, index)
        clique_eids = [index.id_of(u, v) for u in clique for v in clique if u < v]
        assert np.all(trussness[clique_eids] == 8)

        eccs = k_edge_connected_components(g, 7)
        assert any(set(clique) <= set(c) for c in eccs)
