"""SimProve (SAN5xx): interval domain, bounds proofs, certificates.

Covers the interval lattice and affine substitution engine, the
fail-closed edge cases the prover must never certify (empty ranges,
backward steps, unresolvable symbolic endpoints, ``indptr[-1]``
extents), certificate semantics, manifest round-trip + drift
detection, the seeded selftest, and the proof-carrying barrier
elision fast path.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.sanitizer.intervals import (
    Interval,
    SymbolFacts,
    aff_add,
    aff_const,
    aff_sub,
    aff_sym,
    lower_const,
    prove_le,
    prove_nonneg,
    upper_const,
)
from repro.sanitizer.kernels import KERNEL_EXTENTS, KERNELS, run_kernel
from repro.sanitizer.memcheck import MemChecker, MemcheckError
from repro.sanitizer.prove import (
    DEFAULT_MANIFEST_PATH,
    diff_manifest,
    load_manifest,
    manifest_payload,
    prove_kernels,
    prove_selftest,
    prove_source,
    verify_manifest,
)


def _nonneg_facts(*names: str) -> SymbolFacts:
    facts = SymbolFacts()
    for name in names:
        facts.declare(name, Interval(aff_const(0), None, False))
    return facts


# ----------------------------------------------------------------------
# affine / interval domain
# ----------------------------------------------------------------------


class TestAffine:
    def test_cancellation_needs_no_facts(self):
        # n - 1 <= n holds for every n by pure affine cancellation
        n = aff_sym("n")
        assert prove_le(aff_sub(n, aff_const(1)), n, SymbolFacts())

    def test_nonneg_via_declared_symbol(self):
        facts = _nonneg_facts("n")
        assert prove_nonneg(aff_sym("n"), facts)
        assert not prove_nonneg(aff_sub(aff_const(0), aff_sym("n")), facts)

    def test_substitution_bounds(self):
        # with k in [2, 5]: lower(k + 1) = 3, upper(k + 1) = 6
        facts = SymbolFacts()
        facts.declare("k", Interval(aff_const(2), aff_const(5), True))
        expr = aff_add(aff_sym("k"), aff_const(1))
        assert lower_const(expr, facts) == 3
        assert upper_const(expr, facts) == 6

    def test_unresolved_symbol_is_unbounded(self):
        facts = SymbolFacts()
        assert lower_const(aff_sym("mystery"), facts) is None
        assert upper_const(aff_sym("mystery"), facts) is None


class TestInterval:
    def test_join_equal_keeps_tightness(self):
        a = Interval(aff_const(0), aff_const(3), True)
        assert a.join(a, SymbolFacts()).tight

    def test_join_divergent_drops_tightness(self):
        a = Interval(aff_const(0), aff_const(3), True)
        b = Interval(aff_const(1), aff_const(9), True)
        j = a.join(b, SymbolFacts())
        assert not j.tight  # merged paths can no longer convict

    def test_widen_clears_changed_bounds(self):
        a = Interval(aff_const(0), aff_const(3), True)
        b = Interval(aff_const(0), aff_const(7), True)
        w = a.widen(b)
        assert w.lo == aff_const(0) and w.hi is None and not w.tight

    def test_arithmetic(self):
        a = Interval(aff_const(1), aff_const(4), True)
        assert a.shift(2).lo == aff_const(3)
        assert a.neg().hi == aff_const(-1)
        assert a.scale_const(-1).lo == aff_const(-4)


# ----------------------------------------------------------------------
# fail-closed edge cases: never certify what cannot be proven
# ----------------------------------------------------------------------

_EDGE_EXTENTS = {"out": "n"}


def _single_worker(body: str) -> str:
    return (
        "def run(pool, out, n):\n"
        f"{body}"
        "    pool.parallel_for(items, worker, label='edge')\n"
    )


class TestFailClosed:
    def _outcomes(self, src: str, extents=None):
        report = prove_source(src, extents=extents or _EDGE_EXTENTS)
        cert = report.certificates["<source>"]
        return cert, [f.code for f in report.findings]

    def test_empty_range_never_convicts(self):
        # range(5, 3) is empty: the store never executes, so flagging
        # it as a provable OOB would be wrong — must stay SAN502
        src = _single_worker(
            "    def worker(i, ctx):\n"
            "        for j in range(5, 3):\n"
            "            out[j + n] = 0.0\n"
        )
        cert, codes = self._outcomes(src)
        assert "SAN501" not in codes
        assert not cert.fully_proven

    def test_backward_range_step_is_top(self):
        # non-unit (negative) step: the iteration interval is unknown
        src = _single_worker(
            "    def worker(i, ctx):\n"
            "        for j in range(n, 0, -1):\n"
            "            out[j] = 0.0\n"
        )
        cert, codes = self._outcomes(src)
        assert "SAN501" not in codes
        assert "SAN502" in codes  # unproven, fail closed

    def test_unresolvable_symbolic_endpoint(self):
        # `limit` never resolves to anything the extents declare
        src = _single_worker(
            "    def worker(i, ctx):\n"
            "        for j in range(limit):\n"
            "            out[j] = 0.0\n"
        )
        cert, codes = self._outcomes(src)
        assert "SAN501" not in codes
        assert "SAN502" in codes
        assert cert.status == "certified"  # warnings don't block
        assert not cert.fully_proven

    def test_indptr_negative_extent_lookup_unresolved(self):
        # an extent expression the affine parser cannot read
        # (indptr[-1]) must yield "extent unresolved", not a proof
        src = _single_worker(
            "    def worker(i, ctx):\n"
            "        ctx.write(('out', int(i)))\n"
            "        out[i] = 0.0\n"
        )
        report = prove_source(src, extents={"out": "indptr[-1]"})
        cert = report.certificates["<source>"]
        assert not cert.fully_proven
        assert any(
            ob.outcome == "unproven" and "unresolved" in ob.reason
            for ob in cert.obligations
        )

    def test_unknown_item_domain_is_top(self):
        # no assumption comment, items expression opaque: item is top
        src = _single_worker(
            "    def worker(i, ctx):\n"
            "        out[i] = 0.0\n"
        )
        cert, codes = self._outcomes(src)
        assert "SAN501" not in codes
        assert "SAN502" in codes


# ----------------------------------------------------------------------
# proofs that must succeed
# ----------------------------------------------------------------------


class TestProofs:
    def test_range_loop_store_proves(self):
        src = _single_worker(
            "    def worker(i, ctx):\n"
            "        for j in range(n):\n"
            "            ctx.write(('out', int(j)))\n"
        )
        report = prove_source(src, extents=_EDGE_EXTENTS)
        cert = report.certificates["<source>"]
        assert cert.fully_proven
        assert "out" in cert.proven_arrays

    def test_csr_slice_idiom_proves(self):
        src = (
            "def run(pool, indptr, indices, settled, n):\n"
            "    def worker(v, ctx):  # prove: item in [0, n)\n"
            "        for u in indices[indptr[v] : indptr[v + 1]]:\n"
            "            ctx.read(('settled', int(u)))\n"
            "    pool.parallel_for(front, worker, label='csr')\n"
        )
        report = prove_source(
            src,
            extents={"indptr": "n + 1", "indices": "2 * m", "settled": "n"},
        )
        cert = report.certificates["<source>"]
        assert cert.fully_proven, [
            (o.outcome, o.index_repr, o.reason) for o in cert.obligations
        ]

    def test_assumption_is_recorded_not_convicting(self):
        src = (
            "def run(pool, out, n):\n"
            "    def worker(i, ctx):  # prove: item in [0, n)\n"
            "        ctx.write(('out', int(i)))\n"
            "    pool.parallel_for(items, worker, label='a')\n"
        )
        report = prove_source(src, extents=_EDGE_EXTENTS)
        cert = report.certificates["<source>"]
        assert cert.fully_proven
        assert any("item in [0, n)" in a for a in cert.assumptions)


# ----------------------------------------------------------------------
# in-tree certification + manifest
# ----------------------------------------------------------------------


class TestKernels:
    @pytest.fixture(scope="class")
    def report(self):
        return prove_kernels()

    def test_registry_coverage(self, report):
        assert set(report.certificates) == set(KERNELS)
        assert set(KERNEL_EXTENTS) == set(KERNELS)

    def test_at_least_ten_certified(self, report):
        assert len(report.certified) >= 10

    def test_no_provable_oob_in_tree(self, report):
        assert not [f for f in report.findings if f.code == "SAN501"]

    def test_pkc_fully_proven(self, report):
        cert = report.certificates["pkc"]
        assert cert.fully_proven
        assert cert.determinism == "commutative"
        assert "pkc_deg" in cert.proven_arrays

    def test_float_reduction_flagged_order_sensitive(self, report):
        # tree_accumulate's float64 sink.add: bit-identity across
        # thread counts is *not* statically justified for these two
        for name in ("accumulate", "pbks"):
            assert report.certificates[name].status == "order-sensitive"
        codes = [f.code for f in report.findings]
        assert codes.count("SAN503") == 2

    def test_manifest_in_sync(self, report):
        assert DEFAULT_MANIFEST_PATH.exists()
        assert diff_manifest(manifest_payload(report), load_manifest()) == []

    def test_verify_manifest_gate(self):
        ok, message = verify_manifest()
        assert ok, message
        assert "manifest in sync" in message

    def test_drift_detected_against_tampered_manifest(self, report, tmp_path):
        payload = json.loads(DEFAULT_MANIFEST_PATH.read_text())
        payload["kernels"]["pkc"]["determinism"] = "order-sensitive"
        del payload["kernels"]["vertex_rank"]
        tampered = tmp_path / "manifest.json"
        tampered.write_text(json.dumps(payload))
        drift = diff_manifest(
            manifest_payload(report), load_manifest(tampered)
        )
        assert any("pkc" in line for line in drift)
        assert any("vertex_rank" in line for line in drift)

    def test_missing_manifest_is_drift(self, report):
        drift = diff_manifest(manifest_payload(report), None)
        assert drift and "missing" in drift[0]


def test_selftest_catches_planted_bugs():
    ok, message = prove_selftest()
    assert ok, message
    assert "SAN501" in message and "SAN503" in message


# ----------------------------------------------------------------------
# proof-carrying execution: barrier elision
# ----------------------------------------------------------------------


class TestElision:
    @pytest.fixture(scope="class")
    def pkc_cert(self):
        return prove_kernels(["pkc"]).certificates["pkc"]

    def test_defaults_are_cost_transparent(self):
        # without barrier_units/certificate the checker must not
        # perturb the sim clock (the bench_sanitize invariant)
        plain = run_kernel("pkc")
        checked = run_kernel("pkc", memcheck=True)
        assert plain.clock == checked.clock
        assert checked.elided == 0

    def test_certificate_elides_and_saves(self, pkc_cert):
        base = run_kernel("pkc", memcheck=True, barrier_units=1.0)
        fast = run_kernel(
            "pkc", memcheck=True, barrier_units=1.0, certificate=pkc_cert
        )
        assert fast.elided > 0
        assert fast.clock < base.clock
        assert [str(r) for r in base.races] == [str(r) for r in fast.races]
        assert base.memcheck_findings == fast.memcheck_findings

    def test_fully_proven_elides_every_barrier(self, pkc_cert):
        # pkc is fully proven: with the certificate the barrier charge
        # vanishes entirely, restoring the unbarriered clock
        plain = run_kernel("pkc", memcheck=True)
        fast = run_kernel(
            "pkc", memcheck=True, barrier_units=1.0, certificate=pkc_cert
        )
        assert fast.clock == plain.clock

    def test_uncertified_certificate_refused(self):
        cert = prove_kernels(["accumulate"]).certificates["accumulate"]
        assert cert.status == "order-sensitive"
        checker = MemChecker()
        with pytest.raises(MemcheckError):
            checker.apply_certificate(cert)

    def test_partial_certificate_scopes_to_proven_arrays(self):
        checker = MemChecker(barrier_units=1.0)
        cert = prove_kernels(["pkc"]).certificates["pkc"]
        checker.apply_certificate(cert)
        assert checker._proven is True  # fully proven -> blanket elision


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------


class TestCli:
    def test_prove_flag_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["sanitize", "--prove"]) == 0
        out = capsys.readouterr().out
        assert "SimProve" in out
        assert "fully-proven" in out
        assert "0 drift line(s)" in out

    def test_report_schema_key(self, tmp_path, capsys):
        from repro.cli import main

        report_file = tmp_path / "report.json"
        assert (
            main(["sanitize", "--prove", "--report", str(report_file)])
            == 0
        )
        data = json.loads(report_file.read_text())
        assert data["schema"] == "sanitize-report/v1"
        assert "prove" in data
        assert data["prove"]["drift"] == []
        certs = data["prove"]["certificates"]
        assert certs["pkc"]["fully_proven"] is True

    def test_subset_prove_skips_drift(self, capsys):
        from repro.cli import main

        assert main(["sanitize", "--kernel", "pkc", "--prove"]) == 0
        out = capsys.readouterr().out
        assert "drift check skipped" in out


def test_stale_baseline_entries_helper():
    from repro.sanitizer.flow import stale_baseline_entries

    class _F:
        def __init__(self, key):
            self.key = key

    findings = [_F("SAN401:a"), _F("SAN403:b")]
    baseline = {"SAN401:a": "known", "SAN999:gone": "stale"}
    assert stale_baseline_entries(findings, baseline) == ["SAN999:gone"]
    assert stale_baseline_entries(findings, {}) == []


def test_committed_flow_baseline_not_stale():
    # every entry in the committed flow_baseline.json must still match
    # a live finding — otherwise the baseline rotted
    from repro.cli import main

    assert main(["sanitize", "--flow", "--strict"]) == 0
