"""Tests for the influential-community index, local core queries, CLI."""

import numpy as np
import pytest

from repro.core.decomposition import core_decomposition
from repro.core.lcps import lcps_build_hcd
from repro.core.local_search import local_core_search
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool
from repro.search.influential import InfluentialCommunityIndex


@pytest.fixture
def setting(paper_like_graph):
    coreness = core_decomposition(paper_like_graph)
    hcd = lcps_build_hcd(paper_like_graph, coreness)
    return paper_like_graph, coreness, hcd


class TestLocalCoreQuery:
    def test_matches_local_search(self, setting):
        graph, coreness, hcd = setting
        for v in range(graph.num_vertices):
            for k in range(0, int(coreness[v]) + 1):
                expected = local_core_search(graph, coreness, v, level=k)
                got = hcd.k_core_containing(v, k)
                assert np.array_equal(got, expected), (v, k)

    def test_above_coreness_empty(self, setting):
        graph, coreness, hcd = setting
        v = int(np.argmin(coreness))
        assert hcd.k_core_containing(v, int(coreness[v]) + 1).size == 0
        assert hcd.core_node_containing(v, int(coreness[v]) + 1) == -1

    def test_random_graphs(self, random_graph):
        coreness = core_decomposition(random_graph)
        hcd = lcps_build_hcd(random_graph, coreness)
        rng = np.random.default_rng(0)
        for v in rng.integers(0, random_graph.num_vertices, size=10):
            v = int(v)
            k = int(rng.integers(0, coreness[v] + 1))
            expected = local_core_search(random_graph, coreness, v, level=k)
            assert np.array_equal(hcd.k_core_containing(v, k), expected)

    def test_maximal_core_nodes_partition_core_set(self, setting):
        graph, coreness, hcd = setting
        for k in range(0, int(coreness.max()) + 1):
            nodes = hcd.maximal_core_nodes(k)
            union = (
                np.sort(np.concatenate([hcd.reconstruct_core(t) for t in nodes]))
                if nodes
                else np.empty(0, dtype=np.int64)
            )
            expected = np.flatnonzero(coreness >= k)
            assert np.array_equal(union, expected)


class TestInfluentialIndex:
    def test_influence_is_min_member_weight(self, setting):
        graph, coreness, hcd = setting
        rng = np.random.default_rng(1)
        weights = rng.random(graph.num_vertices)
        index = InfluentialCommunityIndex(hcd, weights)
        for node in range(hcd.num_nodes):
            members = hcd.reconstruct_core(node)
            assert index.influence_of(node) == pytest.approx(
                float(weights[members].min())
            )
            assert index.core_size(node) == members.size

    def test_top_r_sorted_and_maximal(self, setting):
        graph, coreness, hcd = setting
        rng = np.random.default_rng(2)
        weights = rng.random(graph.num_vertices)
        index = InfluentialCommunityIndex(hcd, weights)
        for k in range(0, int(coreness.max()) + 1):
            answers = index.top_r(k, 3)
            influences = [a.influence for a in answers]
            assert influences == sorted(influences, reverse=True)
            for a in answers:
                members = index.members(a)
                assert np.all(coreness[members] >= k)

    def test_top_r_limits(self, setting):
        graph, coreness, hcd = setting
        weights = np.ones(graph.num_vertices)
        index = InfluentialCommunityIndex(hcd, weights)
        assert index.top_r(2, 0) == []
        assert len(index.top_r(2, 100)) == len(hcd.maximal_core_nodes(2))

    def test_weight_size_mismatch(self, setting):
        _, _, hcd = setting
        with pytest.raises(ValueError):
            InfluentialCommunityIndex(hcd, np.ones(3))

    def test_high_weight_clique_wins(self):
        # two K4s; the one with heavier members must rank first at k=3
        edges = [(u, v) for u in range(4) for v in range(u + 1, 4)]
        edges += [(u + 4, v + 4) for u, v in edges]
        g = Graph.from_edges(edges, num_vertices=8)
        coreness = core_decomposition(g)
        hcd = lcps_build_hcd(g, coreness)
        weights = np.array([1.0] * 4 + [5.0] * 4)
        index = InfluentialCommunityIndex(hcd, weights)
        top = index.top_r(3, 2)
        assert len(top) == 2
        assert top[0].influence == 5.0
        assert set(index.members(top[0]).tolist()) == {4, 5, 6, 7}

    def test_charges_pool(self, setting):
        graph, _, hcd = setting
        pool = SimulatedPool(threads=2)
        InfluentialCommunityIndex(hcd, np.ones(graph.num_vertices), pool)
        assert pool.clock > 0


class TestCli:
    def run(self, capsys, *argv) -> str:
        from repro.cli import main

        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_datasets(self, capsys):
        out = self.run(capsys, "datasets")
        assert "as_skitter" in out
        assert "UK" in out

    def test_stats_on_file(self, capsys, tmp_path, paper_like_graph):
        from repro.graph.io import write_edge_list

        path = tmp_path / "g.txt"
        write_edge_list(paper_like_graph, path)
        out = self.run(capsys, "stats", "--input", str(path))
        assert "kmax     : 4" in out

    def test_decompose_tree(self, capsys, tmp_path, triangle):
        from repro.graph.io import write_edge_list

        path = tmp_path / "g.txt"
        write_edge_list(triangle, path)
        out = self.run(capsys, "decompose", "--input", str(path), "--tree")
        assert "k=2" in out

    def test_search(self, capsys, tmp_path, paper_like_graph):
        from repro.graph.io import write_edge_list

        path = tmp_path / "g.txt"
        write_edge_list(paper_like_graph, path)
        out = self.run(
            capsys, "search", "--input", str(path), "--metric", "average_degree"
        )
        assert "best k" in out

    def test_bestk(self, capsys, tmp_path, paper_like_graph):
        from repro.graph.io import write_edge_list

        path = tmp_path / "g.txt"
        write_edge_list(paper_like_graph, path)
        out = self.run(capsys, "bestk", "--input", str(path))
        assert "<== best" in out

    def test_unknown_metric_rejected(self, tmp_path, triangle):
        from repro.cli import main
        from repro.graph.io import write_edge_list

        path = tmp_path / "g.txt"
        write_edge_list(triangle, path)
        with pytest.raises(SystemExit):
            main(["search", "--input", str(path), "--metric", "nope"])

    def test_report_subcommand(self, capsys, tmp_path, paper_like_graph):
        from repro.graph.io import write_edge_list

        path = tmp_path / "g.txt"
        write_edge_list(paper_like_graph, path)
        out = self.run(capsys, "report", "--input", str(path))
        assert "== best community per metric ==" in out
        assert "densest core" in out
