"""Tests for the anchored k-core extension."""

import numpy as np
import pytest

from repro.core.decomposition import core_decomposition, k_core_members
from repro.graph.generators import complete_graph, erdos_renyi
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool
from repro.search.anchoring import anchored_k_core, greedy_anchors


def chain_to_clique() -> Graph:
    """K4 with a pendant path: anchoring the path end retains the path.

    Vertices 0-3 form a K4 (coreness 3); 4-5-6 is a path where each
    path vertex has one extra edge into the clique side:
    4 adj {0, 5}, 5 adj {4, 6}, 6 adj {5}.
    """
    edges = [(u, v) for u in range(4) for v in range(u + 1, 4)]
    edges += [(0, 4), (4, 5), (5, 6)]
    return Graph.from_edges(edges)


class TestAnchoredCore:
    def test_no_anchors_is_k_core(self, random_graph):
        coreness = core_decomposition(random_graph)
        for k in (1, 2, 3):
            anchored = anchored_k_core(random_graph, k)
            assert np.array_equal(anchored, k_core_members(coreness, k))

    def test_anchor_is_always_member(self):
        g = chain_to_clique()
        anchored = anchored_k_core(g, 2, anchors=[6])
        assert 6 in anchored.tolist()

    def test_anchoring_cascades_followers(self):
        g = chain_to_clique()
        plain = anchored_k_core(g, 2)
        assert set(plain.tolist()) == {0, 1, 2, 3}
        # anchoring the path end keeps 6 in, which keeps 5 (deg 2: 4,6),
        # which keeps 4 (deg 2: 0, 5) — two followers beyond the anchor
        anchored = anchored_k_core(g, 2, anchors=[6])
        assert set(anchored.tolist()) == {0, 1, 2, 3, 4, 5, 6}

    def test_superset_of_plain_core(self, random_graph):
        rng = np.random.default_rng(0)
        anchors = [int(v) for v in rng.integers(0, random_graph.num_vertices, 3)]
        plain = set(anchored_k_core(random_graph, 3).tolist())
        anchored = set(anchored_k_core(random_graph, 3, anchors).tolist())
        assert plain <= anchored

    def test_monotone_in_anchor_set(self):
        g = chain_to_clique()
        one = set(anchored_k_core(g, 2, [6]).tolist())
        two = set(anchored_k_core(g, 2, [6, 5]).tolist())
        assert one <= two

    def test_members_satisfy_relaxed_constraint(self):
        g = erdos_renyi(40, 0.08, seed=2)
        anchors = [0, 1]
        members = anchored_k_core(g, 3, anchors)
        member_set = set(members.tolist())
        for v in members:
            v = int(v)
            if v in anchors:
                continue
            inside = sum(1 for u in g.neighbors(v) if int(u) in member_set)
            assert inside >= 3

    def test_charges_pool(self, triangle):
        pool = SimulatedPool()
        anchored_k_core(triangle, 2, pool=pool)
        assert pool.clock > 0


class TestGreedyAnchors:
    def test_finds_the_cascade(self):
        g = chain_to_clique()
        result = greedy_anchors(g, 2, budget=1)
        assert result.anchors == [6]
        assert result.total_gain == 3
        assert set(result.members.tolist()) == set(range(7))

    def test_stops_when_no_gain(self):
        result = greedy_anchors(complete_graph(5), 4, budget=3)
        assert result.anchors == []  # K5's 4-core is already everything
        assert result.total_gain == 0

    def test_budget_respected(self):
        g = erdos_renyi(50, 0.06, seed=4)
        result = greedy_anchors(g, 3, budget=2)
        assert len(result.anchors) <= 2
        assert len(result.gains) == len(result.anchors)

    def test_gains_are_real(self):
        g = erdos_renyi(50, 0.06, seed=5)
        plain = anchored_k_core(g, 3).size
        result = greedy_anchors(g, 3, budget=2)
        assert result.members.size == plain + result.total_gain

    def test_negative_budget(self, triangle):
        with pytest.raises(ValueError):
            greedy_anchors(triangle, 2, budget=-1)
