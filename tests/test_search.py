"""Cross-algorithm tests for subgraph search (BKS vs PBKS, oracles)."""

import numpy as np
import pytest

from repro.core.decomposition import core_decomposition
from repro.core.lcps import lcps_build_hcd
from repro.core.phcd import phcd_build_hcd
from repro.graph.generators import erdos_renyi, powerlaw_cluster
from repro.graph.graph import Graph
from repro.graph.properties import subgraph_primary_values
from repro.parallel.scheduler import SimulatedPool
from repro.search.bks import bks_search, build_coreness_sorted_adjacency
from repro.search.metrics import metric_names
from repro.search.pbks import pbks_search
from repro.search.preprocessing import preprocess_neighbor_counts


@pytest.fixture
def decomposed(random_graph):
    coreness = core_decomposition(random_graph)
    hcd = lcps_build_hcd(random_graph, coreness)
    return random_graph, coreness, hcd


class TestPreprocessing:
    def test_counts_match_direct(self, decomposed):
        graph, coreness, _ = decomposed
        counts = preprocess_neighbor_counts(graph, coreness, SimulatedPool(threads=3))
        for v in range(graph.num_vertices):
            neigh = graph.neighbors(v)
            assert counts.gt[v] == int(np.sum(coreness[neigh] > coreness[v]))
            assert counts.eq[v] == int(np.sum(coreness[neigh] == coreness[v]))
            assert counts.lt[v] == int(np.sum(coreness[neigh] < coreness[v]))

    def test_ge_helper(self, decomposed):
        graph, coreness, _ = decomposed
        counts = preprocess_neighbor_counts(graph, coreness, SimulatedPool())
        assert np.array_equal(counts.ge(), counts.gt + counts.eq)

    def test_sums_to_degree(self, decomposed):
        graph, coreness, _ = decomposed
        counts = preprocess_neighbor_counts(graph, coreness, SimulatedPool())
        total = counts.gt + counts.eq + counts.lt
        assert np.array_equal(total, graph.degrees())


class TestBksEqualsPbks:
    @pytest.mark.parametrize("metric", metric_names())
    def test_scores_identical(self, decomposed, metric):
        graph, coreness, hcd = decomposed
        serial = bks_search(graph, coreness, hcd, metric)
        parallel = pbks_search(
            graph, coreness, hcd, metric, SimulatedPool(threads=4)
        )
        assert np.allclose(serial.scores, parallel.scores)
        assert serial.best_score == pytest.approx(parallel.best_score)
        assert np.allclose(serial.values, parallel.values)

    @pytest.mark.parametrize("threads", [1, 2, 8, 16])
    def test_pbks_thread_invariance(self, decomposed, threads):
        graph, coreness, hcd = decomposed
        base = pbks_search(
            graph, coreness, hcd, "conductance", SimulatedPool(threads=1)
        )
        other = pbks_search(
            graph, coreness, hcd, "conductance", SimulatedPool(threads=threads)
        )
        assert np.allclose(base.scores, other.scores)

    def test_type_b_thread_invariance(self, decomposed):
        graph, coreness, hcd = decomposed
        runs = [
            pbks_search(
                graph,
                coreness,
                hcd,
                "clustering_coefficient",
                SimulatedPool(threads=p),
            ).scores
            for p in (1, 4, 13)
        ]
        for other in runs[1:]:
            assert np.allclose(runs[0], other)


class TestPrimaryValueOracle:
    @pytest.mark.parametrize("metric", ["conductance", "clustering_coefficient"])
    def test_every_node_matches_direct_computation(self, metric):
        g = powerlaw_cluster(120, 3, 0.4, seed=11)
        coreness = core_decomposition(g)
        hcd = phcd_build_hcd(g, coreness, SimulatedPool(threads=3))
        result = pbks_search(g, coreness, hcd, metric, SimulatedPool(threads=3))
        type_b = metric == "clustering_coefficient"
        for node in range(hcd.num_nodes):
            members = hcd.reconstruct_core(node)
            direct = subgraph_primary_values(g, members)
            got = result.node_values(node)
            assert got.n == direct["n"]
            assert got.m == direct["m"]
            assert got.b == direct["b"]
            if type_b:
                assert got.triangles == direct["triangles"]
                # PBKS counts *all* connected triplets within the core
                from repro.graph.properties import triplet_count

                sub, _ = g.induced_subgraph(members)
                assert got.triplets == triplet_count(sub)

    def test_root_values_cover_whole_component_graph(self):
        g = erdos_renyi(70, 0.08, seed=2)
        coreness = core_decomposition(g)
        hcd = lcps_build_hcd(g, coreness)
        result = pbks_search(
            g, coreness, hcd, "average_degree", SimulatedPool(threads=2)
        )
        roots = hcd.roots()
        total_n = sum(result.values[r][0] for r in roots)
        total_m = sum(result.values[r][1] for r in roots)
        assert total_n == g.num_vertices
        assert total_m == g.num_edges
        # roots have no boundary
        for r in roots:
            assert result.values[r][2] == 0


class TestSearchResult:
    def test_best_members_is_best_core(self, decomposed):
        graph, coreness, hcd = decomposed
        result = pbks_search(
            graph, coreness, hcd, "average_degree", SimulatedPool()
        )
        members = result.best_members()
        sub, _ = graph.induced_subgraph(members)
        assert sub.average_degree() == pytest.approx(result.best_score)
        assert result.best_k == int(hcd.node_coreness[result.best_node])

    def test_best_is_argmax(self, decomposed):
        graph, coreness, hcd = decomposed
        result = pbks_search(graph, coreness, hcd, "conductance", SimulatedPool())
        assert result.best_score == pytest.approx(float(result.scores.max()))

    def test_empty_graph(self):
        g = Graph.empty(0)
        hcd = lcps_build_hcd(g, np.array([], dtype=np.int64))
        result = pbks_search(
            g, np.array([], dtype=np.int64), hcd, "average_degree", SimulatedPool()
        )
        assert result.best_node == -1
        assert result.best_members().size == 0

    def test_repr(self, decomposed):
        graph, coreness, hcd = decomposed
        result = bks_search(graph, coreness, hcd, "average_degree")
        assert "average_degree" in repr(result)


class TestBksInternals:
    def test_sorted_adjacency_order(self, decomposed):
        graph, coreness, _ = decomposed
        sorted_adj = build_coreness_sorted_adjacency(graph, coreness)
        for v in range(graph.num_vertices):
            row = sorted_adj[v]
            cores = coreness[row]
            assert np.all(np.diff(cores) <= 0)  # descending coreness
            assert sorted(row.tolist()) == graph.neighbors(v).tolist()

    def test_sorted_adjacency_charges(self, decomposed):
        graph, coreness, _ = decomposed
        pool = SimulatedPool()
        build_coreness_sorted_adjacency(graph, coreness, pool)
        assert pool.clock > 0

    def test_precomputed_adjacency_reused(self, decomposed):
        graph, coreness, hcd = decomposed
        sorted_adj = build_coreness_sorted_adjacency(graph, coreness)
        a = bks_search(graph, coreness, hcd, "conductance", sorted_adj=sorted_adj)
        b = bks_search(graph, coreness, hcd, "conductance")
        assert np.allclose(a.scores, b.scores)

    def test_bks_level_barriers_recorded(self, decomposed):
        graph, coreness, hcd = decomposed
        pool = SimulatedPool()
        bks_search(graph, coreness, hcd, "average_degree", pool)
        labels = [r.label for r in pool.regions]
        assert any(lbl.startswith("bks:level_") for lbl in labels)


class TestCostShape:
    def test_pbks_typea_scales_with_threads(self):
        g = powerlaw_cluster(300, 4, 0.3, seed=1)
        coreness = core_decomposition(g)
        hcd = lcps_build_hcd(g, coreness)
        clocks = {}
        for p in (1, 16):
            pool = SimulatedPool(threads=p)
            counts = preprocess_neighbor_counts(g, coreness, pool)
            mark = pool.mark()
            pbks_search(g, coreness, hcd, "conductance", pool, counts=counts)
            clocks[p] = pool.elapsed_since(mark)
        assert clocks[16] < clocks[1]

    def test_pbks_faster_than_bks_parallel(self):
        g = powerlaw_cluster(300, 4, 0.3, seed=1)
        coreness = core_decomposition(g)
        hcd = lcps_build_hcd(g, coreness)
        pool_b = SimulatedPool(threads=1)
        bks_search(g, coreness, hcd, "conductance", pool_b)
        pool_p = SimulatedPool(threads=16)
        pbks_search(g, coreness, hcd, "conductance", pool_p)
        assert pool_p.clock < pool_b.clock
