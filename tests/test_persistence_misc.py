"""Tests for HCD persistence, sparklines, and example smoke runs."""

import runpy
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.stats import ascii_series
from repro.core.decomposition import core_decomposition
from repro.core.hcd import HCD
from repro.core.lcps import lcps_build_hcd
from repro.errors import HierarchyError

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestHcdPersistence:
    def test_round_trip(self, tmp_path, paper_like_graph):
        coreness = core_decomposition(paper_like_graph)
        hcd = lcps_build_hcd(paper_like_graph, coreness)
        path = tmp_path / "index.npz"
        hcd.save(path)
        loaded = HCD.load(path)
        assert loaded.equivalent_to(hcd)
        assert np.array_equal(loaded.tid, hcd.tid)
        loaded.validate(paper_like_graph, coreness)

    def test_queries_survive_round_trip(self, tmp_path, random_graph):
        coreness = core_decomposition(random_graph)
        hcd = lcps_build_hcd(random_graph, coreness)
        path = tmp_path / "index.npz"
        hcd.save(path)
        loaded = HCD.load(path)
        for v in range(0, random_graph.num_vertices, 7):
            k = int(coreness[v])
            assert np.array_equal(
                loaded.k_core_containing(v, k), hcd.k_core_containing(v, k)
            )

    def test_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(path, node_coreness=np.zeros(1))
        with pytest.raises(HierarchyError):
            HCD.load(path)

    def test_empty_hierarchy(self, tmp_path):
        from repro.core.hcd import HCDBuilder

        empty = HCDBuilder(0).build()
        path = tmp_path / "empty.npz"
        empty.save(path)
        assert HCD.load(path).num_nodes == 0


class TestAsciiSeries:
    def test_monotone_ramp(self):
        art = ascii_series([1, 2, 4, 8, 16])
        assert len(art) == 5
        assert art[-1] == "@"
        assert art[0] != "@"

    def test_empty(self):
        assert ascii_series([]) == ""

    def test_all_zero(self):
        assert ascii_series([0, 0, 0]) == "   "

    def test_width(self):
        assert len(ascii_series([1, 2], width=3)) == 6


def _run_example(name: str, argv: list[str] | None = None) -> None:
    """Execute an example script in-process (asserts it completes)."""
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name)] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamplesSmoke:
    def test_quickstart(self, capsys):
        _run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "best k-core by average degree" in out

    def test_hierarchy_visualization(self, capsys):
        _run_example("hierarchy_visualization.py")
        out = capsys.readouterr().out
        assert "Graphviz DOT written" in out

    def test_scaling_study_small_dataset(self, capsys):
        _run_example("scaling_study.py", ["AS"])
        out = capsys.readouterr().out
        assert "PHCD's speedup over serial LCPS" in out
