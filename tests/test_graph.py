"""Unit tests for the CSR graph substrate."""

import numpy as np
import pytest

from repro.errors import GraphBuildError, GraphFormatError
from repro.graph.graph import Graph


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_duplicate_edges_collapse(self):
        g = Graph.from_edges([(0, 1), (0, 1), (1, 0)])
        assert g.num_edges == 1

    def test_self_loops_dropped(self):
        g = Graph.from_edges([(0, 0), (0, 1), (2, 2)])
        assert g.num_edges == 1
        assert g.degree(2) == 0

    def test_symmetry(self):
        g = Graph.from_edges([(0, 1), (2, 1)])
        assert g.has_edge(1, 0)
        assert g.has_edge(1, 2)

    def test_num_vertices_extends_universe(self):
        g = Graph.from_edges([(0, 1)], num_vertices=5)
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_num_vertices_too_small(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edges([(0, 5)], num_vertices=3)

    def test_negative_ids_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edges([(-1, 2)])

    def test_empty(self):
        g = Graph.empty(4)
        assert g.num_vertices == 4
        assert g.num_edges == 0

    def test_empty_edge_list(self):
        g = Graph.from_edges([], num_vertices=2)
        assert g.num_vertices == 2
        assert g.num_edges == 0

    def test_bad_edge_shape(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edges([(0, 1, 2)])


class TestInvariants:
    def test_constructor_validates_sorted_rows(self):
        indptr = np.array([0, 2, 3, 3], dtype=np.int64)
        indices = np.array([2, 1, 0], dtype=np.int64)  # row 0 unsorted? 2,1
        with pytest.raises(GraphBuildError):
            Graph(indptr, indices)

    def test_constructor_validates_symmetry(self):
        indptr = np.array([0, 1, 1], dtype=np.int64)
        indices = np.array([1], dtype=np.int64)  # 0->1 but no 1->0
        with pytest.raises(GraphBuildError):
            Graph(indptr, indices)

    def test_constructor_rejects_self_loop(self):
        indptr = np.array([0, 1], dtype=np.int64)
        indices = np.array([0], dtype=np.int64)
        with pytest.raises(GraphBuildError):
            Graph(indptr, indices)

    def test_constructor_rejects_out_of_range(self):
        indptr = np.array([0, 1], dtype=np.int64)
        indices = np.array([7], dtype=np.int64)
        with pytest.raises(GraphBuildError):
            Graph(indptr, indices)

    def test_arrays_read_only(self, triangle):
        with pytest.raises(ValueError):
            triangle.indptr[0] = 5
        with pytest.raises(ValueError):
            triangle.indices[0] = 5


class TestAccessors:
    def test_degrees(self, triangle):
        assert triangle.degree(0) == 2
        assert np.array_equal(triangle.degrees(), [2, 2, 2])

    def test_neighbors_sorted(self):
        g = Graph.from_edges([(3, 0), (3, 2), (3, 1)])
        assert np.array_equal(g.neighbors(3), [0, 1, 2])

    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert not triangle.has_edge(0, 0)

    def test_average_degree(self, triangle):
        assert triangle.average_degree() == pytest.approx(2.0)
        assert Graph.empty(0).average_degree() == 0.0

    def test_edges_each_once(self, triangle):
        edges = list(triangle.edges())
        assert sorted(edges) == [(0, 1), (0, 2), (1, 2)]
        assert all(u < v for u, v in edges)

    def test_edge_array_matches_edges(self, paper_like_graph):
        arr = paper_like_graph.edge_array()
        assert sorted(map(tuple, arr.tolist())) == sorted(
            paper_like_graph.edges()
        )

    def test_len(self, triangle):
        assert len(triangle) == 3


class TestSubgraphs:
    def test_induced_subgraph(self, paper_like_graph):
        sub, ids = paper_like_graph.induced_subgraph([0, 1, 2, 3, 4])
        assert sub.num_vertices == 5
        assert sub.num_edges == 10  # K5
        assert np.array_equal(ids, [0, 1, 2, 3, 4])

    def test_induced_subgraph_relabel(self):
        g = Graph.from_edges([(0, 5), (5, 9)])
        sub, ids = g.induced_subgraph([5, 9])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1
        assert np.array_equal(ids, [5, 9])

    def test_induced_subgraph_out_of_range(self, triangle):
        with pytest.raises(GraphFormatError):
            triangle.induced_subgraph([0, 99])

    def test_connected_components(self):
        g = Graph.from_edges([(0, 1), (2, 3)], num_vertices=5)
        labels = g.connected_components()
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
        assert labels[4] not in (labels[0], labels[2])

    def test_components_deterministic(self, random_graph):
        a = random_graph.connected_components()
        b = random_graph.connected_components()
        assert np.array_equal(a, b)


class TestEquality:
    def test_equal_graphs(self):
        a = Graph.from_edges([(0, 1), (1, 2)])
        b = Graph.from_edges([(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_graphs(self, triangle):
        other = Graph.from_edges([(0, 1), (1, 2)])
        assert triangle != other

    def test_eq_non_graph(self, triangle):
        assert triangle != "graph"

    def test_repr(self, triangle):
        assert repr(triangle) == "Graph(n=3, m=3)"
