"""Tests for whole-graph property helpers (vs networkx references)."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.generators import complete_graph, erdos_renyi
from repro.graph.graph import Graph
from repro.graph.properties import (
    boundary_edge_count,
    degeneracy,
    degeneracy_ordering,
    internal_edge_count,
    subgraph_primary_values,
    triangle_count,
    triplet_count,
)


def to_nx(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from(graph.edges())
    return g


class TestTriangles:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx(self, seed):
        g = erdos_renyi(70, 0.08, seed=seed)
        expected = sum(nx.triangles(to_nx(g)).values()) // 3
        assert triangle_count(g) == expected

    def test_complete_graph(self):
        assert triangle_count(complete_graph(6)) == 20  # C(6,3)

    def test_triangle_free(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        assert triangle_count(g) == 0


class TestTriplets:
    def test_path(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert triplet_count(g) == 1

    def test_star(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert triplet_count(g) == 3  # C(3,2)

    @pytest.mark.parametrize("seed", range(3))
    def test_formula(self, seed):
        g = erdos_renyi(50, 0.1, seed=seed)
        deg = g.degrees()
        assert triplet_count(g) == int(np.sum(deg * (deg - 1) // 2))


class TestBoundaries:
    def test_counts(self, paper_like_graph):
        members = [0, 1, 2, 3, 4]  # the K5
        assert internal_edge_count(paper_like_graph, members) == 10
        # only the bridge (5, 0) leaves the K5
        assert boundary_edge_count(paper_like_graph, members) == 1

    def test_whole_graph_no_boundary(self, triangle):
        assert boundary_edge_count(triangle, [0, 1, 2]) == 0

    def test_cross_check_random(self):
        g = erdos_renyi(60, 0.1, seed=1)
        members = list(range(0, 30))
        inside = internal_edge_count(g, members)
        border = boundary_edge_count(g, members)
        rest = internal_edge_count(g, list(range(30, 60)))
        assert inside + border + rest == g.num_edges


class TestDegeneracy:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_max_coreness(self, seed, coreness_oracle):
        g = erdos_renyi(60, 0.08, seed=seed)
        assert degeneracy(g) == int(coreness_oracle(g).max())

    def test_ordering_is_permutation(self):
        g = erdos_renyi(50, 0.1, seed=0)
        order = degeneracy_ordering(g)
        assert sorted(order) == list(range(50))

    def test_ordering_peels_min_degree(self):
        # in the removal order, each vertex's residual degree <= degeneracy
        g = erdos_renyi(50, 0.1, seed=2)
        d = degeneracy(g)
        removed = set()
        for v in degeneracy_ordering(g):
            residual = sum(1 for u in g.neighbors(v) if int(u) not in removed)
            assert residual <= d
            removed.add(v)


class TestPrimaryValuesOracle:
    def test_on_k5(self, paper_like_graph):
        vals = subgraph_primary_values(paper_like_graph, [0, 1, 2, 3, 4])
        assert vals["n"] == 5
        assert vals["m"] == 10
        assert vals["b"] == 1
        assert vals["triangles"] == 10  # C(5,3)
        assert vals["triplets"] == 5 * 6  # 5 vertices with C(4,2) centers

    def test_empty_members(self, triangle):
        vals = subgraph_primary_values(triangle, [])
        assert vals["n"] == 0 and vals["m"] == 0
