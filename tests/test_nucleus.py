"""Tests for the (3,4)-nucleus extension (the paper's named open gap)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import complete_graph, erdos_renyi, powerlaw_cluster
from repro.graph.graph import Graph
from repro.graph.properties import triangle_count
from repro.nucleus import (
    TriangleIndex,
    nucleus_decomposition,
    nucleus_hierarchy,
    triangle_supports,
)
from repro.parallel.scheduler import SimulatedPool


class TestTriangleIndex:
    @pytest.mark.parametrize("seed", range(4))
    def test_enumerates_all_triangles(self, seed):
        g = erdos_renyi(30, 0.25, seed=seed)
        index = TriangleIndex(g)
        assert len(index) == triangle_count(g)

    def test_lookup(self, triangle):
        index = TriangleIndex(triangle)
        assert index.id_of(2, 0, 1) == 0
        assert index.get(0, 1, 1) is None

    def test_k4_companions_in_k4(self):
        g = complete_graph(4)
        index = TriangleIndex(g)
        assert len(index) == 4
        for tid in range(4):
            companions = index.k4_companions(tid)
            assert len(companions) == 1
            assert sorted(companions[0]) == sorted(
                x for x in range(4) if x != tid
            )

    def test_triangle_free(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        assert len(TriangleIndex(g)) == 0


class TestSupports:
    def test_k5_supports(self):
        g = complete_graph(5)
        assert np.all(triangle_supports(g) == 2)

    def test_no_k4_zero_support(self, triangle):
        assert np.array_equal(triangle_supports(triangle), [0])


class TestNucleusDecomposition:
    @pytest.mark.parametrize("n,expected", [(4, 1), (5, 2), (6, 3), (7, 4)])
    def test_complete_graphs(self, n, expected):
        # in K_n every triangle lies in n-3 K4s, all symmetric
        theta = nucleus_decomposition(complete_graph(n))
        assert set(theta.tolist()) == {expected}

    def test_k4_free_graph(self):
        g = powerlaw_cluster(40, 2, 0.9, seed=0)
        index = TriangleIndex(g)
        theta = nucleus_decomposition(g, index)
        supports = triangle_supports(g, index)
        assert np.all(theta[supports == 0] == 0)

    def test_soundness_every_level(self):
        """theta >= k members each keep >= k intact K4s at level k."""
        g = erdos_renyi(22, 0.45, seed=3)
        index = TriangleIndex(g)
        theta = nucleus_decomposition(g, index)
        for k in range(1, int(theta.max()) + 1):
            members = set(int(x) for x in np.flatnonzero(theta >= k))
            for tid in members:
                intact = sum(
                    1
                    for comp in index.k4_companions(tid)
                    if all(x in members for x in comp)
                )
                assert intact >= k

    def test_maximality_against_support_bound(self):
        # theta can never exceed the raw K4 support
        g = erdos_renyi(20, 0.5, seed=5)
        index = TriangleIndex(g)
        theta = nucleus_decomposition(g, index)
        assert np.all(theta <= triangle_supports(g, index))

    def test_empty(self):
        assert nucleus_decomposition(Graph.empty(3)).size == 0

    def test_charges_pool(self):
        pool = SimulatedPool()
        nucleus_decomposition(complete_graph(5), pool=pool)
        assert pool.clock > 0

    @settings(max_examples=20, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=11),
                st.integers(min_value=0, max_value=11),
            ),
            max_size=40,
        )
    )
    def test_property_soundness(self, edges):
        g = Graph.from_edges(edges, num_vertices=12)
        index = TriangleIndex(g)
        theta = nucleus_decomposition(g, index)
        for k in range(1, int(theta.max()) + 1 if theta.size else 1):
            members = set(int(x) for x in np.flatnonzero(theta >= k))
            for tid in members:
                intact = sum(
                    1
                    for comp in index.k4_companions(tid)
                    if all(x in members for x in comp)
                )
                assert intact >= k


class TestNucleusHierarchy:
    def test_two_k5s_two_deep_nodes(self):
        edges = list(complete_graph(5).edges())
        edges += [(u + 5, v + 5) for u, v in complete_graph(5).edges()]
        edges += [(0, 5), (1, 5)]  # a bridge triangle-free-ish junction
        g = Graph.from_edges(edges)
        index = TriangleIndex(g)
        theta = nucleus_decomposition(g, index)
        h = nucleus_hierarchy(g, theta, SimulatedPool(), index=index)
        h.validate(theta)
        deep = [i for i in range(h.num_nodes) if h.node_theta[i] == 2]
        assert len(deep) == 2
        sides = {frozenset(h.vertices_of_nucleus(i).tolist()) for i in deep}
        assert sides == {frozenset(range(5)), frozenset(range(5, 10))}

    def test_nested_levels(self):
        # K6 with a K4 pendant sharing one triangle's worth of structure
        edges = list(complete_graph(6).edges())
        edges += [(0, 6), (1, 6), (2, 6)]  # vertex 6 forms K4 {0,1,2,6}
        g = Graph.from_edges(edges)
        index = TriangleIndex(g)
        theta = nucleus_decomposition(g, index)
        h = nucleus_hierarchy(g, theta, SimulatedPool(threads=2), index=index)
        h.validate(theta)
        assert int(h.node_theta.max()) >= 3

    @pytest.mark.parametrize("threads", [1, 3, 6])
    def test_thread_invariance(self, threads):
        g = powerlaw_cluster(40, 3, 0.8, seed=2)
        index = TriangleIndex(g)
        theta = nucleus_decomposition(g, index)
        base = nucleus_hierarchy(g, theta, SimulatedPool(threads=1), index=index)
        other = nucleus_hierarchy(
            g, theta, SimulatedPool(threads=threads), index=index
        )
        assert base.canonical_form() == other.canonical_form()

    def test_reconstruct_nucleus_theta_floor(self):
        g = erdos_renyi(22, 0.45, seed=7)
        index = TriangleIndex(g)
        theta = nucleus_decomposition(g, index)
        h = nucleus_hierarchy(g, theta, SimulatedPool(), index=index)
        for node in range(h.num_nodes):
            k = int(h.node_theta[node])
            tris = h.reconstruct_nucleus(node)
            assert np.all(theta[tris] >= k)
            own = h.triangles_of(node)
            assert np.all(theta[own] == k)

    def test_empty_graph(self):
        h = nucleus_hierarchy(Graph.empty(2), pool=SimulatedPool())
        assert h.num_nodes == 0
