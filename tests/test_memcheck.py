"""Tests for SimCheck: traps, barrier, checked casts, CheckedGraph, SAN3xx."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.errors import GraphFormatError, MemcheckError, NumericSoundnessError
from repro.graph import CheckedGraph, Graph, validate_csr
from repro.graph.generators import erdos_renyi
from repro.graph.io import load_npz, read_metis, save_npz
from repro.parallel.scheduler import SimulatedPool
from repro.sanitizer import (
    KERNELS,
    MemChecker,
    checked_cast,
    checked_sum,
    lint_source,
    memcheck_selftest,
    run_all_kernels,
    run_buggy_memcheck_kernel,
    run_kernel,
    san_empty,
    trap_value,
)


class TestTrapValues:
    def test_f64_trap_is_payload_tagged_quiet_nan(self):
        trap = trap_value(np.float64)
        assert np.isnan(trap)
        assert np.float64(trap).view(np.uint64) == np.uint64(0x7FF8DEADDEADDEAD)

    def test_f32_trap_is_payload_tagged_quiet_nan(self):
        trap = trap_value(np.float32)
        assert np.isnan(trap)
        assert np.float32(trap).view(np.uint32) == np.uint32(0x7FC0DEAD)

    def test_signed_trap_near_iinfo_min(self):
        for dt in (np.int8, np.int16, np.int32, np.int64):
            trap = trap_value(dt)
            assert trap == np.iinfo(dt).min + 0xDD
            assert np.asarray(trap).dtype == np.dtype(dt)

    def test_unsigned_trap_near_iinfo_max(self):
        for dt in (np.uint8, np.uint16, np.uint32, np.uint64):
            assert trap_value(dt) == np.iinfo(dt).max - 0xDD

    def test_unsupported_dtype_raises(self):
        with pytest.raises(MemcheckError):
            trap_value(np.bool_)

    def test_legit_nan_is_not_the_trap(self):
        # a NaN computed by arithmetic must be bit-distinguishable from
        # poison, or uninit-read would fire on legitimate 0/0 results
        legit = np.float64("nan")
        assert legit.view(np.uint64) != np.float64(trap_value(np.float64)).view(
            np.uint64
        )


class TestSanEmpty:
    def test_fills_with_trap(self):
        arr = san_empty(7, np.int64, name="t")
        assert arr.shape == (7,)
        assert np.all(arr == trap_value(np.int64))

    def test_float_fill_is_trap_bits(self):
        arr = san_empty(3, np.float64, name="t")
        assert np.all(arr.view(np.uint64) == np.uint64(0x7FF8DEADDEADDEAD))

    def test_registers_with_active_checker(self):
        checker = MemChecker().activate()
        try:
            san_empty(4, np.int64, name="reg_buf")
        finally:
            checker.deactivate()
        assert "reg_buf" in checker.allocations
        assert "test_memcheck.py" in checker.allocations["reg_buf"]

    def test_explicit_checker_beats_active(self):
        explicit = MemChecker()
        san_empty(2, np.int64, name="explicit_buf", checker=explicit)
        assert "explicit_buf" in explicit.allocations

    def test_no_active_checker_is_fine(self, no_active_checker):
        assert MemChecker.current() is None
        arr = san_empty(5, np.float32, name="orphan")
        assert np.all(np.isnan(arr))

    def test_bad_name_rejected(self):
        checker = MemChecker()
        with pytest.raises(MemcheckError):
            checker.register_allocation("", np.zeros(1))


def _watched_run(worker, *, setup, items=4, threads=4):
    """Run ``worker`` on a fresh watched pool; returns the checker."""
    pool = SimulatedPool(threads=threads)
    checker = MemChecker()
    with checker.watch(pool):
        arrays = setup()
        pool.parallel_for(
            list(range(items)),
            lambda i, ctx: worker(i, ctx, arrays),
            label="memcheck_test",
        )
    return checker


class TestReadBarrier:
    def test_uninit_read_detected_with_alloc_site(self):
        def setup():
            return san_empty(8, np.int64, name="cold")

        def worker(i, ctx, arr):
            if i == 0:
                ctx.read(("cold", 3))

        checker = _watched_run(worker, setup=setup)
        kinds = {f.kind for f in checker.findings}
        assert kinds == {"uninit-read"}
        finding = checker.findings[0]
        assert finding.name == "cold" and finding.index == 3
        assert finding.region == "memcheck_test"
        assert finding.alloc_site and "test_memcheck.py" in finding.alloc_site

    def test_write_then_read_is_clean(self):
        def setup():
            return san_empty(8, np.int64, name="warm")

        def worker(i, ctx, arr):
            ctx.write(("warm", i))
            arr[i] = i
            ctx.read(("warm", i))

        checker = _watched_run(worker, setup=setup)
        assert not checker.findings

    def test_legit_nan_read_not_flagged_when_written(self):
        # shadow bit distinguishes "wrote a NaN" from "never wrote"
        def setup():
            return san_empty(4, np.float64, name="nanbuf")

        def worker(i, ctx, arr):
            if i == 0:
                ctx.write(("nanbuf", 0), value=0.0)
                arr[0] = float("nan")  # sani: ok - testing legit-NaN path
                ctx.read(("nanbuf", 0))

        checker = _watched_run(worker, setup=setup)
        assert not [f for f in checker.findings if f.kind == "uninit-read"]

    def test_oob_read_and_write_detected(self):
        def setup():
            return san_empty(4, np.int64, name="tiny")

        def worker(i, ctx, arr):
            if i == 0:
                ctx.read(("tiny", 9))
            elif i == 1:
                ctx.write(("tiny", -2))

        checker = _watched_run(worker, setup=setup)
        kinds = {f.kind for f in checker.findings}
        assert kinds == {"oob-read", "oob-write"}
        oob_write = next(f for f in checker.findings if f.kind == "oob-write")
        assert "-2" in oob_write.detail

    def test_findings_deduplicated(self):
        def setup():
            return san_empty(4, np.int64, name="dup")

        def worker(i, ctx, arr):
            ctx.read(("dup", 1))  # every item hits the same poisoned slot

        checker = _watched_run(worker, setup=setup, items=8)
        assert len(checker.findings) == 1

    def test_unregistered_locations_ignored(self):
        def setup():
            return None

        def worker(i, ctx, arr):
            ctx.read(("nobody_registered_me", 0))
            ctx.write(("nobody_registered_me", 99))

        checker = _watched_run(worker, setup=setup)
        assert not checker.findings
        assert checker.events_seen > 0

    def test_detach_restores_pool(self, no_active_checker):
        pool = SimulatedPool(threads=2)
        pool.set_observer(None)  # shed any session-wide --memcheck observer
        checker = MemChecker()
        with checker.watch(pool):
            assert pool.observer is checker
            assert MemChecker.current() is checker
        assert pool.observer is None
        assert MemChecker.current() is None


@pytest.fixture
def no_active_checker():
    """Hide any session-wide checker (pytest --memcheck) for tests that
    exercise the raise-without-checker contract."""
    saved = MemChecker._active
    MemChecker._active = []
    yield
    MemChecker._active = saved


class TestNumericSoundness:
    def test_checked_cast_raises_without_checker(self, no_active_checker):
        with pytest.raises(NumericSoundnessError):
            checked_cast(np.asarray([2**40], dtype=np.int64), np.int32)

    def test_checked_cast_reports_to_checker(self):
        checker = MemChecker()
        out = checked_cast(
            np.asarray([2**40], dtype=np.int64),
            np.int32,
            what="deg_sum",
            checker=checker,
        )
        assert out.dtype == np.int32  # cast still performed
        assert len(checker.findings) == 1
        finding = checker.findings[0]
        assert finding.kind == "overflow" and finding.name == "deg_sum"
        assert "2**40" in finding.detail or str(2**40) in finding.detail

    def test_checked_cast_in_range_is_clean(self):
        checker = MemChecker()
        out = checked_cast(
            np.arange(10, dtype=np.int64), np.int32, checker=checker
        )
        assert not checker.findings
        assert np.array_equal(out, np.arange(10, dtype=np.int32))

    def test_checked_cast_nan_to_int_is_overflow(self, no_active_checker):
        with pytest.raises(NumericSoundnessError):
            checked_cast(np.asarray([float("nan")]), np.int64)

    def test_checked_cast_f64_to_f32_overflow(self, no_active_checker):
        with pytest.raises(NumericSoundnessError):
            checked_cast(np.asarray([1e300]), np.float32)

    def test_checked_cast_f64_to_f32_in_range(self):
        out = checked_cast(np.asarray([1.5, -2.5]), np.float32)
        assert out.dtype == np.float32

    def test_checked_sum_exact(self):
        assert checked_sum(np.arange(100, dtype=np.int32)) == 4950

    def test_checked_sum_overflow_raises(self, no_active_checker):
        vals = np.asarray([2**62, 2**62, 2**62], dtype=np.int64)
        with pytest.raises(NumericSoundnessError):
            checked_sum(vals, np.int64)

    def test_checked_sum_overflow_reported_and_exact(self):
        checker = MemChecker()
        vals = np.asarray([2**62, 2**62], dtype=np.int64)
        total = checked_sum(vals, np.int64, what="acc", checker=checker)
        assert total == 2**63  # exact, not wrapped
        assert checker.findings[0].kind == "overflow"

    def test_checked_sum_rejects_float_input(self):
        with pytest.raises(MemcheckError):
            checked_sum(np.asarray([1.0]))


class TestSeededAcceptance:
    """The acceptance suite: every seeded bug class must be detected."""

    def test_all_bug_classes_detected(self):
        checker = run_buggy_memcheck_kernel(threads=4)
        kinds = {f.kind for f in checker.findings}
        assert "uninit-read" in kinds
        assert "oob-write" in kinds
        assert "overflow" in kinds
        assert checker.nan_origins  # bug 4: NaN injection tracked

    def test_uninit_read_attributed_to_allocation_site(self):
        checker = run_buggy_memcheck_kernel(threads=4)
        uninit = next(f for f in checker.findings if f.kind == "uninit-read")
        assert uninit.name == "selftest_buf" and uninit.index == 5
        assert uninit.alloc_site and "memcheck.py" in uninit.alloc_site
        assert uninit.region == "selftest:memcheck"

    def test_nan_origin_names_region(self):
        checker = run_buggy_memcheck_kernel(threads=4)
        origin = checker.nan_origins[0]
        assert origin.name == "selftest_scores"
        assert origin.region == "selftest:memcheck"
        assert "selftest:memcheck" in str(origin)

    def test_memcheck_selftest_passes(self):
        ok, message = memcheck_selftest(threads=4)
        assert ok, message
        assert "detected" in message


class TestCheckedGraphBoundaries:
    def test_empty_graph(self):
        g = CheckedGraph(np.asarray([0]), np.asarray([], dtype=np.int64))
        assert g.num_vertices == 0 and g.num_edges == 0

    def test_single_vertex_no_edges(self):
        g = CheckedGraph(np.asarray([0, 0]), np.asarray([], dtype=np.int64))
        assert g.num_vertices == 1 and g.num_edges == 0

    def test_isolated_vertices_between_edges(self):
        # vertices 0-1 joined, 2 isolated, 3-4 joined
        indptr = np.asarray([0, 1, 2, 2, 3, 4])
        indices = np.asarray([1, 0, 4, 3])
        g = CheckedGraph(indptr, indices)
        assert g.num_vertices == 5 and g.num_edges == 2
        assert g.degree(2) == 0

    def test_is_a_graph(self):
        g = CheckedGraph(np.asarray([0, 1, 2]), np.asarray([1, 0]))
        assert isinstance(g, Graph)

    def test_wrap_revalidates(self):
        g = erdos_renyi(40, 0.1, seed=1)
        checked = CheckedGraph.wrap(g)
        assert checked.num_edges == g.num_edges

    def test_self_loop_rejected(self):
        with pytest.raises(GraphFormatError, match="self-loop"):
            validate_csr(np.asarray([0, 1, 2]), np.asarray([0, 1]))

    def test_duplicate_neighbor_rejected(self):
        # vertex 0 lists neighbor 1 twice -> not strictly sorted
        with pytest.raises(GraphFormatError, match="strictly"):
            validate_csr(np.asarray([0, 2, 4]), np.asarray([1, 1, 0, 0]))

    def test_unsorted_row_rejected(self):
        with pytest.raises(GraphFormatError, match="sorted"):
            validate_csr(
                np.asarray([0, 2, 3, 4]), np.asarray([2, 1, 0, 0])
            )

    def test_asymmetric_rejected(self):
        # arc (0, 1) with no reverse: vertex 1 points onward to 2
        with pytest.raises(GraphFormatError, match="symmetric"):
            validate_csr(np.asarray([0, 1, 2, 3]), np.asarray([1, 2, 1]))

    def test_odd_arc_count_rejected(self):
        with pytest.raises(GraphFormatError):
            validate_csr(np.asarray([0, 1, 1]), np.asarray([1]))

    def test_out_of_range_neighbor_rejected(self):
        with pytest.raises(GraphFormatError, match="outside"):
            validate_csr(np.asarray([0, 1, 2]), np.asarray([5, 0]))

    def test_negative_neighbor_rejected(self):
        with pytest.raises(GraphFormatError, match="outside"):
            validate_csr(np.asarray([0, 1, 2]), np.asarray([-1, 0]))

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(GraphFormatError, match="decreases"):
            validate_csr(np.asarray([0, 2, 1, 2]), np.asarray([1, 2]))

    def test_indptr_head_tail_checked(self):
        with pytest.raises(GraphFormatError, match=r"indptr\[0\]"):
            validate_csr(np.asarray([1, 2]), np.asarray([0]))
        with pytest.raises(GraphFormatError, match=r"indptr\[-1\]"):
            validate_csr(np.asarray([0, 1]), np.asarray([1, 0]))

    def test_float_dtype_rejected(self):
        with pytest.raises(GraphFormatError, match="integer"):
            validate_csr(np.asarray([0.0, 1.0]), np.asarray([0]))

    def test_empty_indptr_rejected(self):
        with pytest.raises(GraphFormatError, match="at least one"):
            validate_csr(np.asarray([], dtype=np.int64), np.asarray([], dtype=np.int64))

    def test_uint64_overflow_rejected(self):
        huge = np.asarray([0, np.iinfo(np.uint64).max], dtype=np.uint64)
        with pytest.raises(GraphFormatError, match="overflow"):
            validate_csr(huge, np.asarray([], dtype=np.int64))

    def test_valid_graph_round_trips_through_validation(self):
        g = erdos_renyi(60, 0.08, seed=3)
        validate_csr(g.indptr, g.indices)  # must not raise


class TestUntrustedIo:
    def test_load_npz_returns_checked_graph(self, tmp_path):
        g = erdos_renyi(30, 0.15, seed=2)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        loaded = load_npz(path)
        assert isinstance(loaded, CheckedGraph)
        assert loaded.num_edges == g.num_edges

    def test_corrupted_npz_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        # out-of-range neighbor smuggled into the indices array
        np.savez_compressed(
            path,
            indptr=np.asarray([0, 1, 2]),
            indices=np.asarray([99, 0]),
        )
        with pytest.raises(GraphFormatError):
            load_npz(path)

    def test_npz_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "empty.npz"
        np.savez_compressed(path, other=np.zeros(3))
        with pytest.raises(GraphFormatError, match="missing"):
            load_npz(path)

    def test_metis_non_integer_header_rejected(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("abc def\n")
        with pytest.raises(GraphFormatError, match="non-integer"):
            read_metis(path)

    def test_metis_negative_header_rejected(self, tmp_path):
        path = tmp_path / "neg.metis"
        path.write_text("-3 1\n")
        with pytest.raises(GraphFormatError, match="negative"):
            read_metis(path)

    def test_metis_non_integer_neighbor_rejected(self, tmp_path):
        path = tmp_path / "badnbr.metis"
        path.write_text("2 1\n2\nxyz\n")
        with pytest.raises(GraphFormatError, match="non-integer neighbor"):
            read_metis(path)

    def test_metis_out_of_range_neighbor_rejected(self, tmp_path):
        path = tmp_path / "oob.metis"
        path.write_text("2 1\n2\n7\n")
        with pytest.raises(GraphFormatError, match="out of range"):
            read_metis(path)


class TestEdgeDedupFallback:
    def test_key_safe_fallback_matches_fast_path(self, monkeypatch):
        import repro.graph.graph as graph_mod

        edges = [(0, 1), (1, 2), (1, 0), (2, 1), (0, 3), (3, 0), (0, 1)]
        fast = Graph.from_edges(edges)
        # force the lexicographic np.unique(axis=0) fallback that guards
        # against lo*n+hi overflowing int64 on huge vertex counts
        monkeypatch.setattr(graph_mod, "_KEY_SAFE_N", 0)
        slow = Graph.from_edges(edges)
        assert np.array_equal(fast.indptr, slow.indptr)
        assert np.array_equal(fast.indices, slow.indices)


def _codes(source: str) -> set[str]:
    return {f.code for f in lint_source(source)}


class TestSan3xxLint:
    def test_san301_unpoisoned_empty(self):
        assert "SAN301" in _codes("import numpy as np\nbuf = np.empty(n)\n")

    def test_san301_empty_like(self):
        assert "SAN301" in _codes(
            "import numpy as np\nbuf = np.empty_like(other)\n"
        )

    def test_san301_zero_size_exempt(self):
        assert "SAN301" not in _codes(
            "import numpy as np\nbuf = np.empty(0)\n"
        )

    def test_san301_suppressed(self):
        assert "SAN301" not in _codes(
            "import numpy as np\n"
            "buf = np.empty(n)  # sani: ok - fully written below\n"
        )

    def test_san302_unchecked_fancy_index_in_worker(self):
        assert "SAN302" in _codes(
            "order = build_order()\n"
            "data = build_data()\n"
            "def worker(i, ctx):\n"
            "    ctx.charge(1)\n"
            "    x = data[order[i]]\n"
            "pool.parallel_for(items, worker)\n"
        )

    def test_san302_trusted_csr_exempt(self):
        assert "SAN302" not in _codes(
            "indptr = graph.indptr\n"
            "indices = graph.indices\n"
            "def worker(v, ctx):\n"
            "    ctx.charge(1)\n"
            "    x = indices[indptr[v]]\n"
            "pool.parallel_for(items, worker)\n"
        )

    def test_san302_tuple_unpack_trusted(self):
        assert "SAN302" not in _codes(
            "indptr, indices = graph.indptr, graph.indices\n"
            "def worker(v, ctx):\n"
            "    ctx.charge(1)\n"
            "    x = indices[indptr[v]]\n"
            "pool.parallel_for(items, worker)\n"
        )

    def test_san302_annotation_not_flagged(self):
        assert "SAN302" not in _codes(
            "def worker(v, ctx):\n"
            "    ctx.charge(1)\n"
            "    lower: dict[int, tuple[int, int]] = {}\n"
            "    lower[v] = (v, v)\n"
            "pool.parallel_for(items, worker)\n"
        )

    def test_san303_narrowing_astype(self):
        assert "SAN303" in _codes("small = big.astype(np.int32)\n")

    def test_san303_widening_ok(self):
        assert "SAN303" not in _codes("wide = small.astype(np.int64)\n")

    def test_san304_float_into_int_accumulator(self):
        assert "SAN304" in _codes(
            "import numpy as np\n"
            "acc = np.zeros(n, dtype=np.int64)\n"
            "acc[0] += weight * 0.5\n"
        )

    def test_san3xx_are_warnings(self):
        findings = lint_source("import numpy as np\nbuf = np.empty(n)\n")
        assert all(
            f.severity == "warning"
            for f in findings
            if f.code.startswith("SAN3")
        )

    def test_src_tree_clean_of_san3xx(self):
        from repro.sanitizer.lint import lint_paths

        hits = [
            f for f in lint_paths(["src"]) if f.code.startswith("SAN3")
        ]
        assert not hits, "\n".join(str(f) for f in hits)


class TestKernelGateMemcheck:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernel_clean_under_memcheck(self, name):
        report = run_kernel(name, threads=4, memcheck=True)
        assert report.clean, "\n".join(
            str(f) for f in report.races + report.memcheck_findings
        )

    def test_run_all_kernels_memcheck(self):
        reports = run_all_kernels(threads=2, memcheck=True)
        assert len(reports) == len(KERNELS)
        assert all(r.clean for r in reports)

    def test_memcheck_does_not_perturb_simulated_clock(self):
        # the acceptance criterion: barrier work is charge-free, so the
        # simulated clock is bit-identical with and without memcheck
        for name in ("accumulate", "pkc", "pbks"):
            plain = run_kernel(name, threads=4, memcheck=False)
            checked = run_kernel(name, threads=4, memcheck=True)
            assert checked.clock == plain.clock


class TestCliMemcheck:
    def test_memcheck_kernel_clean_exit_zero(self, capsys):
        assert cli_main(["sanitize", "--memcheck", "--kernel", "pkc"]) == 0
        out = capsys.readouterr().out
        assert "memcheck" in out

    def test_memcheck_selftest_exit_zero(self, capsys):
        assert cli_main(["sanitize", "--memcheck", "--selftest"]) == 0
        out = capsys.readouterr().out
        assert "seeded race detected" in out
        assert "seeded memcheck bugs detected" in out

    def test_family_summary_lines(self, capsys):
        assert cli_main(["sanitize", "--memcheck", "--kernel", "pkc"]) == 0
        out = capsys.readouterr().out
        assert "-- family summary --" in out
        assert "races" in out and "memcheck" in out

    def test_report_artifact(self, tmp_path, capsys):
        report = tmp_path / "memcheck.json"
        assert (
            cli_main(
                [
                    "sanitize",
                    "--memcheck",
                    "--kernel",
                    "pkc",
                    "--report",
                    str(report),
                ]
            )
            == 0
        )
        data = json.loads(report.read_text())
        assert data["ok"] is True
        assert data["families"]["memcheck"]["failures"] == 0
        assert data["kernels"][0]["name"] == "pkc"

    def test_warnings_gate_only_under_strict(self, tmp_path, capsys):
        warn_only = tmp_path / "warn.py"
        warn_only.write_text("import numpy as np\nbuf = np.empty(n)\n")
        assert cli_main(["sanitize", "--lint", str(warn_only)]) == 0
        capsys.readouterr()
        assert (
            cli_main(["sanitize", "--strict", "--lint", str(warn_only)]) == 1
        )
        assert "SAN301" in capsys.readouterr().out

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["sanitize", "--help"])
        out = capsys.readouterr().out
        assert "exit" in out.lower()
