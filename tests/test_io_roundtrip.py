"""Round-trip properties of the three IO formats + NaN-score guards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.io import (
    load_npz,
    read_edge_list,
    read_metis,
    save_npz,
    write_edge_list,
    write_metis,
)
from repro.parallel.scheduler import SimulatedPool
from repro.pipeline import decompose
from repro.search.bks import bks_search
from repro.search.best_k import find_best_k
from repro.search.influential import InfluentialCommunityIndex
from repro.search.metrics import register_metric
from repro.search.pbks import pbks_search
from repro.search.result import best_finite_index
from repro.truss.decomposition import truss_decomposition
from repro.truss.hierarchy import truss_hierarchy
from repro.truss.search import TRUSS_METRICS, best_truss


def _graph_with_isolated() -> Graph:
    """5 vertices; 0 and 3 isolated, a path 1-2-4."""
    builder = GraphBuilder()
    for v in range(5):
        builder.add_vertex(v)
    builder.add_edge(1, 2)
    builder.add_edge(2, 4)
    return builder.build(num_vertices=5)


def _same(a: Graph, b: Graph) -> bool:
    return (
        a.num_vertices == b.num_vertices
        and np.array_equal(a.indptr, b.indptr)
        and np.array_equal(a.indices, b.indices)
    )


class TestMetisRoundTrip:
    def test_isolated_vertices_survive(self, tmp_path):
        g = _graph_with_isolated()
        path = tmp_path / "g.metis"
        write_metis(g, path)
        assert _same(g, read_metis(path))

    def test_all_isolated(self, tmp_path):
        builder = GraphBuilder()
        for v in range(3):
            builder.add_vertex(v)
        g = builder.build(num_vertices=3)
        path = tmp_path / "g.metis"
        write_metis(g, path)
        g2 = read_metis(path)
        assert g2.num_vertices == 3 and g2.num_edges == 0

    def test_comments_skipped_blanks_kept(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text(
            "% leading comment\n"
            "4 1\n"
            "\n"  # vertex 0: isolated
            "# interleaved comment\n"
            "3\n"  # vertex 1: neighbor 2 (1-indexed 3)
            "2\n"  # vertex 2: neighbor 1
            "\n",  # vertex 3: isolated
            encoding="utf-8",
        )
        g = read_metis(path)
        assert g.num_vertices == 4 and g.num_edges == 1
        assert list(g.neighbors(1)) == [2]
        assert g.degrees()[0] == 0 and g.degrees()[3] == 0

    def test_trailing_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 1\n2\n1\n\n\n", encoding="utf-8")
        g = read_metis(path)
        assert g.num_vertices == 2 and g.num_edges == 1

    def test_wrong_line_count_still_rejected(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("3 1\n2\n1\n", encoding="utf-8")
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_dense_roundtrip(self, paper_like_graph, tmp_path):
        path = tmp_path / "g.metis"
        write_metis(paper_like_graph, path)
        assert _same(paper_like_graph, read_metis(path))


class TestEdgeListRoundTrip:
    def test_roundtrip(self, paper_like_graph, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(paper_like_graph, path)
        assert _same(paper_like_graph, read_edge_list(path))

    def test_weighted_extra_fields(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text(
            "# weighted\n0 1 3.5\n1 2 0.25 extra\n", encoding="utf-8"
        )
        g = read_edge_list(path)
        assert g.num_vertices == 3 and g.num_edges == 2

    def test_comment_styles(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text(
            "# hash\n% percent\n// slashes\n\n0 1\n", encoding="utf-8"
        )
        g = read_edge_list(path)
        assert g.num_edges == 1

    def test_relabel_sparse_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1000000 42\n42 7\n", encoding="utf-8")
        g = read_edge_list(path, relabel=True)
        # first-seen compaction: 1000000->0, 42->1, 7->2
        assert g.num_vertices == 3 and g.num_edges == 2
        assert sorted(int(v) for v in g.neighbors(1)) == [0, 2]


class TestNpzRoundTrip:
    def test_roundtrip_with_isolated(self, tmp_path):
        g = _graph_with_isolated()
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert _same(g, load_npz(path))

    def test_roundtrip_dense(self, paper_like_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(paper_like_graph, path)
        assert _same(paper_like_graph, load_npz(path))


# ----------------------------------------------------------------------
# NaN-score regressions: argmax must never be poisoned
# ----------------------------------------------------------------------


class TestBestFiniteIndex:
    def test_all_nan(self):
        assert best_finite_index(np.array([np.nan, np.nan])) == -1

    def test_empty(self):
        assert best_finite_index(np.array([])) == -1

    def test_nan_skipped(self):
        assert best_finite_index(np.array([np.nan, 2.0, 3.0, np.nan])) == 2

    def test_neg_inf_not_a_winner(self):
        assert best_finite_index(np.array([-np.inf, 1.0])) == 1
        assert best_finite_index(np.array([-np.inf, -np.inf])) == -1

    def test_pos_inf_is_a_legitimate_winner(self):
        # e.g. separability of a boundary-free component
        assert best_finite_index(np.array([1.0, np.inf, np.nan])) == 1


class TestNanMetricGuards:
    @pytest.fixture()
    def deco(self, paper_like_graph):
        return decompose(paper_like_graph, threads=4, parallel=True)

    def test_pbks_all_nan_reports_no_winner(self, paper_like_graph, deco):
        metric = register_metric(
            "_test_nan_all", "A", lambda values, totals: float("nan")
        )
        pool = SimulatedPool(threads=4)
        result = pbks_search(
            paper_like_graph, deco.coreness, deco.hcd, metric, pool
        )
        assert result.best_node == -1
        assert result.best_k == -1
        assert result.best_score == float("-inf")

    def test_pbks_partial_nan_picks_best_finite(
        self, paper_like_graph, deco
    ):
        def score(values, totals):
            return values.n if values.n >= 6 else float("nan")

        metric = register_metric("_test_nan_some", "A", score)
        pool = SimulatedPool(threads=4)
        result = pbks_search(
            paper_like_graph, deco.coreness, deco.hcd, metric, pool
        )
        assert np.isfinite(result.best_score)
        finite = result.scores[np.isfinite(result.scores)]
        assert result.best_score == finite.max()

    def test_bks_all_nan(self, paper_like_graph, deco):
        metric = register_metric(
            "_test_nan_bks", "A", lambda values, totals: float("nan")
        )
        pool = SimulatedPool(threads=1)
        result = bks_search(
            paper_like_graph, deco.coreness, deco.hcd, metric, pool
        )
        assert result.best_node == -1

    def test_find_best_k_all_nan(self, paper_like_graph, deco):
        metric = register_metric(
            "_test_nan_bestk", "A", lambda values, totals: float("nan")
        )
        pool = SimulatedPool(threads=1)
        result = find_best_k(paper_like_graph, deco.coreness, metric, pool)
        assert result.best_k == -1
        assert result.best_score == float("-inf")

    def test_truss_all_nan(self, paper_like_graph):
        pool = SimulatedPool(threads=2)
        trussness = truss_decomposition(paper_like_graph, pool=pool)
        hierarchy = truss_hierarchy(paper_like_graph, trussness, pool=pool)
        TRUSS_METRICS["_test_nan"] = lambda m, tri: float("nan")
        try:
            result = best_truss(
                paper_like_graph,
                hierarchy,
                trussness,
                pool,
                metric="_test_nan",
            )
        finally:
            del TRUSS_METRICS["_test_nan"]
        assert result.best_node == -1
        assert result.best_edges().size == 0

    def test_influential_nan_weights_rank_last(self):
        # two disjoint triangles -> two maximal 2-cores
        edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        g = Graph.from_edges(edges)
        deco = decompose(g, threads=2, parallel=True)
        weights = np.array([1.0, 2.0, 3.0, np.nan, 5.0, 6.0])
        index = InfluentialCommunityIndex(deco.hcd, weights)
        top = index.top_r(2, 2)
        assert len(top) == 2
        # the NaN-weighted community must not outrank the finite one
        assert np.isfinite(top[0].influence)
