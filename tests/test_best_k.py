"""Tests for the best-k extension (scoring whole k-core sets)."""

import numpy as np
import pytest

from repro.core.decomposition import core_decomposition, k_core_members
from repro.graph.generators import powerlaw_cluster
from repro.graph.graph import Graph
from repro.graph.properties import subgraph_primary_values, triplet_count
from repro.parallel.scheduler import SimulatedPool
from repro.search.best_k import find_best_k
from repro.search.metrics import get_metric
from repro.search.primary_values import GraphTotals, PrimaryValues


@pytest.fixture
def graph():
    return powerlaw_cluster(110, 3, 0.4, seed=6)


class TestValuesOracle:
    @pytest.mark.parametrize("metric", ["average_degree", "clustering_coefficient"])
    def test_every_level_matches_direct(self, graph, metric):
        coreness = core_decomposition(graph)
        res = find_best_k(graph, coreness, metric, SimulatedPool(threads=3))
        type_b = metric == "clustering_coefficient"
        for k in range(int(coreness.max()) + 1):
            members = k_core_members(coreness, k)
            direct = subgraph_primary_values(graph, members)
            row = res.values[k]
            assert row[0] == direct["n"]
            assert row[1] == direct["m"]
            assert row[2] == direct["b"]
            if type_b:
                assert row[3] == direct["triangles"]
                sub, _ = graph.induced_subgraph(members)
                assert row[4] == triplet_count(sub)

    def test_scores_match_metric_of_values(self, graph):
        coreness = core_decomposition(graph)
        metric = get_metric("conductance")
        res = find_best_k(graph, coreness, metric, SimulatedPool())
        totals = GraphTotals.of(graph)
        for k, row in enumerate(res.values):
            expected = metric(
                PrimaryValues(
                    n=row[0], m=row[1], b=row[2], triangles=row[3], triplets=row[4]
                ),
                totals,
            )
            assert res.scores[k] == pytest.approx(expected)


class TestBestK:
    def test_best_is_argmax(self, graph):
        coreness = core_decomposition(graph)
        res = find_best_k(graph, coreness, "average_degree", SimulatedPool())
        assert res.best_k == int(np.argmax(res.scores))
        assert res.best_score == pytest.approx(float(res.scores.max()))

    @pytest.mark.parametrize("threads", [1, 4, 9])
    def test_thread_invariance(self, graph, threads):
        coreness = core_decomposition(graph)
        base = find_best_k(graph, coreness, "average_degree", SimulatedPool(threads=1))
        other = find_best_k(
            graph, coreness, "average_degree", SimulatedPool(threads=threads)
        )
        assert np.allclose(base.scores, other.scores)
        assert base.best_k == other.best_k

    def test_k0_is_whole_graph(self, graph):
        coreness = core_decomposition(graph)
        res = find_best_k(graph, coreness, "average_degree", SimulatedPool())
        assert res.values[0][0] == graph.num_vertices
        assert res.values[0][1] == graph.num_edges
        assert res.values[0][2] == 0  # nothing outside K_0

    def test_average_degree_best_at_dense_nucleus(self):
        # background + planted K8: the best k selects the dense levels
        from repro.graph.generators import erdos_renyi

        edges = list(erdos_renyi(40, 0.06, seed=3).edges())
        clique = list(range(40, 48))
        edges += [(u, v) for u in clique for v in clique if u < v]
        g = Graph.from_edges(edges)
        coreness = core_decomposition(g)
        res = find_best_k(g, coreness, "average_degree", SimulatedPool())
        # K_7 is exactly the planted K8 (average degree 7), so the best
        # score is at least 7; the winning k is above the ER background.
        assert res.best_score >= 7.0 - 1e-9
        assert res.best_k >= 3

    def test_metric_by_object(self, graph):
        coreness = core_decomposition(graph)
        res = find_best_k(
            graph, coreness, get_metric("internal_density"), SimulatedPool()
        )
        assert res.metric_name == "internal_density"
