"""Tests for datasets, engagement study, visualization, and stats."""

import numpy as np
import pytest

from repro.analysis.datasets import (
    PAPER_STATS,
    clear_cache,
    dataset_abbrevs,
    dataset_names,
    get_spec,
    load,
)
from repro.analysis.engagement import (
    EngagementStudy,
    mean_engagement_by_coreness,
    mean_engagement_by_position,
    pearson_correlation,
    synthesize_engagement,
)
from repro.analysis.stats import format_table, geometric_mean, speedup
from repro.analysis.visualization import ascii_tree, hierarchy_summary, to_dot
from repro.core.decomposition import core_decomposition
from repro.core.lcps import lcps_build_hcd
from repro.errors import UnknownDatasetError


class TestDatasets:
    def test_ten_datasets(self):
        assert len(dataset_names()) == 10
        assert set(dataset_names()) == set(PAPER_STATS)

    def test_abbrevs(self):
        abbrevs = dataset_abbrevs()
        assert abbrevs["as_skitter"] == "AS"
        assert abbrevs["uk_2007_05"] == "UK"

    def test_lookup_by_abbrev(self):
        assert get_spec("LJ").name == "livejournal"

    def test_unknown_dataset(self):
        with pytest.raises(UnknownDatasetError):
            get_spec("no_such_graph")

    def test_load_caches(self):
        a = load("as_skitter")
        b = load("AS")
        assert a is b
        clear_cache()
        c = load("AS")
        assert c is not a
        assert c.graph == a.graph  # deterministic regeneration

    def test_smallest_dataset_properties(self):
        ds = load("AS")
        assert ds.graph.num_vertices > 0
        assert ds.kmax == int(ds.coreness.max())
        stats = ds.paper_stats()
        assert stats["kmax"] == 111

    def test_m_ordering_matches_paper(self):
        # Table II lists datasets in ascending edge count; the stand-ins
        # preserve that ordering.
        sizes = [load(name).graph.num_edges for name in dataset_names()]
        assert sizes == sorted(sizes)

    def test_orkut_fewest_tree_nodes(self):
        # |T| character: Orkut-like has the fewest tree nodes (paper: 253,
        # smallest in Table II).
        counts = {}
        for name in ("orkut", "as_skitter", "uk_2007_05"):
            ds = load(name)
            hcd = lcps_build_hcd(ds.graph, ds.coreness)
            counts[name] = hcd.num_nodes
        assert counts["orkut"] < counts["as_skitter"] < counts["uk_2007_05"]


class TestEngagement:
    @pytest.fixture
    def setting(self, paper_like_graph):
        coreness = core_decomposition(paper_like_graph)
        hcd = lcps_build_hcd(paper_like_graph, coreness)
        return paper_like_graph, coreness, hcd

    def test_synthesize_deterministic(self, setting):
        _, coreness, hcd = setting
        a = synthesize_engagement(coreness, hcd, seed=1)
        b = synthesize_engagement(coreness, hcd, seed=1)
        assert np.array_equal(a, b)
        assert np.all(a >= 0)

    def test_mean_by_coreness_keys(self, setting):
        _, coreness, hcd = setting
        eng = synthesize_engagement(coreness, hcd)
        means = mean_engagement_by_coreness(coreness, eng)
        assert set(means) == set(int(k) for k in np.unique(coreness))

    def test_positive_correlation(self, setting):
        _, coreness, hcd = setting
        eng = synthesize_engagement(coreness, hcd, noise=0.5, seed=0)
        corr = pearson_correlation(coreness.astype(float), eng)
        assert corr > 0.5

    def test_by_position_refines(self, setting):
        _, coreness, hcd = setting
        eng = synthesize_engagement(coreness, hcd)
        by_pos = mean_engagement_by_position(coreness, hcd, eng)
        assert all(isinstance(k, tuple) and len(k) == 2 for k in by_pos)

    def test_study_position_gain(self, setting):
        _, coreness, hcd = setting
        study = EngagementStudy.run(coreness, hcd, seed=0)
        # depth carries real signal -> position-aware estimate no worse
        assert study.position_gain >= -1e-9
        assert study.coreness_correlation > 0

    def test_pearson_degenerate(self):
        assert pearson_correlation(np.ones(5), np.arange(5)) == 0.0
        assert pearson_correlation(np.arange(1), np.arange(1)) == 0.0


class TestVisualization:
    @pytest.fixture
    def hcd(self, paper_like_graph):
        coreness = core_decomposition(paper_like_graph)
        return lcps_build_hcd(paper_like_graph, coreness)

    def test_ascii_tree_mentions_all_nodes(self, hcd):
        art = ascii_tree(hcd)
        for node in range(hcd.num_nodes):
            assert f"k={int(hcd.node_coreness[node])}" in art

    def test_ascii_tree_truncates_vertices(self, hcd):
        art = ascii_tree(hcd, max_vertices=1)
        assert "..." in art

    def test_dot_structure(self, hcd):
        dot = to_dot(hcd)
        assert dot.startswith("digraph")
        assert dot.count("->") == int(np.sum(hcd.parent >= 0))
        assert dot.rstrip().endswith("}")

    def test_summary(self, hcd):
        text = hierarchy_summary(hcd)
        assert f"tree nodes : {hcd.num_nodes}" in text

    def test_summary_empty(self):
        from repro.core.hcd import HCDBuilder

        assert hierarchy_summary(HCDBuilder(0).build()) == "empty hierarchy"


class TestStats:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == float("inf")
