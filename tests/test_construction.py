"""Cross-algorithm tests for HCD construction (LCPS, PHCD, RC, D&C).

Every construction algorithm must produce the *same* hierarchy (up to
node numbering), pass full structural validation, and agree with the
definitional ground truth computed by BFS per level.
"""

import numpy as np
import pytest

from repro.core.decomposition import core_decomposition
from repro.core.divide_conquer import dnc_build_hcd
from repro.core.hcd import HCDBuilder
from repro.core.lcps import lcps_build_hcd
from repro.core.local_search import local_core_search, rc_build_hcd
from repro.core.lower_bound import lower_bound_cost
from repro.core.partition import label_propagation_partition
from repro.core.phcd import phcd_build_hcd
from repro.graph.generators import core_chain, erdos_renyi, powerlaw_cluster
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool


def ground_truth_hcd(result):
    """Build an HCD object from a CoreChainResult's ground truth."""
    builder = HCDBuilder(result.graph.num_vertices)
    for k, verts in result.tree_nodes:
        node = builder.new_node(k)
        for v in sorted(verts):
            builder.add_vertex(node, v)
    for idx, pa in enumerate(result.parents):
        if pa >= 0:
            builder.set_parent(idx, pa)
    return builder.build()


class TestLCPS:
    def test_paper_like_graph(self, paper_like_graph):
        coreness = core_decomposition(paper_like_graph)
        hcd = lcps_build_hcd(paper_like_graph, coreness)
        hcd.validate(paper_like_graph, coreness)
        ks = sorted(int(k) for k in hcd.node_coreness)
        assert ks == [2, 3, 3, 4]

    @pytest.mark.parametrize(
        "branches",
        [
            [[4, 3, 2]],
            [[5, 3, 2], [4, 2]],
            [[5, 3, 2], [4, 2], [3, 2]],
            [[7, 5, 3, 1]],
            [[3, 1], [2, 1], [4, 1]],
        ],
    )
    def test_matches_ground_truth(self, branches):
        result = core_chain(branches)
        hcd = lcps_build_hcd(result.graph, result.coreness)
        hcd.validate(result.graph, result.coreness)
        assert hcd.equivalent_to(ground_truth_hcd(result))

    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_validate(self, seed):
        g = erdos_renyi(80, 0.07, seed=seed)
        coreness = core_decomposition(g)
        hcd = lcps_build_hcd(g, coreness)
        hcd.validate(g, coreness)

    def test_empty_graph(self):
        hcd = lcps_build_hcd(Graph.empty(0), np.array([], dtype=np.int64))
        assert hcd.num_nodes == 0

    def test_isolated_vertices(self):
        g = Graph.from_edges([(0, 1)], num_vertices=4)
        coreness = core_decomposition(g)
        hcd = lcps_build_hcd(g, coreness)
        hcd.validate(g, coreness)
        assert hcd.num_nodes == 3  # the edge + two isolated 0-cores

    def test_charges_pool(self, paper_like_graph):
        pool = SimulatedPool()
        lcps_build_hcd(paper_like_graph, core_decomposition(paper_like_graph), pool)
        assert pool.clock > 0


class TestPHCD:
    @pytest.mark.parametrize("threads", [1, 2, 4, 11])
    def test_matches_lcps(self, threads, random_graph):
        coreness = core_decomposition(random_graph)
        reference = lcps_build_hcd(random_graph, coreness)
        hcd = phcd_build_hcd(
            random_graph, coreness, SimulatedPool(threads=threads)
        )
        hcd.validate(random_graph, coreness)
        assert hcd.equivalent_to(reference)

    def test_sequential_engine_matches(self, random_graph):
        coreness = core_decomposition(random_graph)
        wf = phcd_build_hcd(
            random_graph, coreness, SimulatedPool(threads=4), use_waitfree=True
        )
        seq = phcd_build_hcd(
            random_graph, coreness, SimulatedPool(threads=4), use_waitfree=False
        )
        assert wf.equivalent_to(seq)

    @pytest.mark.parametrize("rate", [0.1, 0.5])
    def test_cas_failures_do_not_corrupt(self, rate):
        g = powerlaw_cluster(100, 3, 0.3, seed=2)
        coreness = core_decomposition(g)
        reference = lcps_build_hcd(g, coreness)
        hcd = phcd_build_hcd(
            g,
            coreness,
            SimulatedPool(threads=5),
            cas_failure_rate=rate,
            seed=3,
        )
        hcd.validate(g, coreness)
        assert hcd.equivalent_to(reference)

    def test_ground_truth(self, chain_result):
        hcd = phcd_build_hcd(
            chain_result.graph, chain_result.coreness, SimulatedPool(threads=3)
        )
        assert hcd.equivalent_to(ground_truth_hcd(chain_result))

    def test_empty_graph(self):
        hcd = phcd_build_hcd(
            Graph.empty(0), np.array([], dtype=np.int64), SimulatedPool()
        )
        assert hcd.num_nodes == 0

    def test_deterministic_across_runs(self, random_graph):
        coreness = core_decomposition(random_graph)
        a = phcd_build_hcd(random_graph, coreness, SimulatedPool(threads=4))
        b = phcd_build_hcd(random_graph, coreness, SimulatedPool(threads=4))
        assert a.canonical_form() == b.canonical_form()

    def test_serial_phcd_faster_than_lcps(self):
        # Table III column (1): serial PHCD beats LCPS on the clock
        g = powerlaw_cluster(400, 5, 0.3, seed=8)
        coreness = core_decomposition(g)
        pool_l = SimulatedPool(threads=1)
        lcps_build_hcd(g, coreness, pool_l)
        pool_p = SimulatedPool(threads=1)
        phcd_build_hcd(g, coreness, pool_p)
        assert pool_p.clock < pool_l.clock

    def test_parallel_scales(self):
        g = powerlaw_cluster(400, 5, 0.3, seed=8)
        coreness = core_decomposition(g)
        clocks = {}
        for p in (1, 8, 32):
            pool = SimulatedPool(threads=p)
            phcd_build_hcd(g, coreness, pool)
            clocks[p] = pool.clock
        assert clocks[8] < clocks[1]
        assert clocks[32] < clocks[8]


class TestLocalSearch:
    def test_local_core_search_is_k_core(self, paper_like_graph):
        coreness = core_decomposition(paper_like_graph)
        members = local_core_search(paper_like_graph, coreness, 0)
        k = int(coreness[0])
        sub, _ = paper_like_graph.induced_subgraph(members)
        assert int(sub.degrees().min()) >= k

    def test_local_search_level_override(self, paper_like_graph):
        coreness = core_decomposition(paper_like_graph)
        all_of_it = local_core_search(paper_like_graph, coreness, 0, level=0)
        assert all_of_it.size == paper_like_graph.num_vertices

    def test_level_above_coreness_empty(self, triangle):
        coreness = core_decomposition(triangle)
        assert local_core_search(triangle, coreness, 0, level=5).size == 0

    @pytest.mark.parametrize("threads", [1, 4])
    def test_rc_matches_lcps(self, threads, random_graph):
        coreness = core_decomposition(random_graph)
        reference = lcps_build_hcd(random_graph, coreness)
        hcd = rc_build_hcd(random_graph, coreness, SimulatedPool(threads=threads))
        hcd.validate(random_graph, coreness)
        assert hcd.equivalent_to(reference)

    def test_rc_costs_more_than_phcd(self):
        # RC re-walks every k-core at every level, so its cost grows
        # with hierarchy depth — use a graph with non-trivial kmax.
        g = erdos_renyi(250, 0.1, seed=5)
        coreness = core_decomposition(g)
        pool_rc = SimulatedPool(threads=4)
        pool_ph = SimulatedPool(threads=4)
        rc_build_hcd(g, coreness, pool_rc)
        phcd_build_hcd(g, coreness, pool_ph)
        assert pool_rc.clock > pool_ph.clock


class TestLowerBound:
    def test_lb_below_phcd(self, random_graph):
        coreness = core_decomposition(random_graph)
        pool_lb = SimulatedPool(threads=1)
        lb = lower_bound_cost(random_graph, pool_lb)
        pool_ph = SimulatedPool(threads=1)
        phcd_build_hcd(random_graph, coreness, pool_ph)
        assert 0 < lb < pool_ph.clock

    def test_lb_returns_elapsed(self, triangle):
        pool = SimulatedPool(threads=2)
        lb = lower_bound_cost(triangle, pool)
        assert lb == pytest.approx(pool.clock)


class TestPartitionAndDnc:
    def test_partition_labels_valid(self, random_graph):
        labels = label_propagation_partition(
            random_graph, 4, SimulatedPool(threads=4)
        )
        assert labels.size == random_graph.num_vertices
        assert set(np.unique(labels)) <= set(range(4))

    def test_partition_single_part(self, triangle):
        labels = label_propagation_partition(triangle, 1, SimulatedPool())
        assert np.array_equal(labels, [0, 0, 0])

    def test_partition_invalid(self, triangle):
        with pytest.raises(ValueError):
            label_propagation_partition(triangle, 0, SimulatedPool())

    def test_dnc_produces_correct_hcd(self, random_graph):
        coreness = core_decomposition(random_graph)
        reference = lcps_build_hcd(random_graph, coreness)
        result = dnc_build_hcd(
            random_graph, coreness, SimulatedPool(threads=4)
        )
        result.hcd.validate(random_graph, coreness)
        assert result.hcd.equivalent_to(reference)

    def test_dnc_phase_times(self, random_graph):
        coreness = core_decomposition(random_graph)
        result = dnc_build_hcd(random_graph, coreness, SimulatedPool(threads=2))
        assert result.partition_time > 0
        assert result.local_lcps_time > 0
        assert result.merge_time > 0
        assert result.total_time == pytest.approx(
            result.partition_time + result.local_lcps_time + result.merge_time
        )

    def test_dnc_slower_than_phcd(self):
        g = powerlaw_cluster(200, 4, 0.2, seed=3)
        coreness = core_decomposition(g)
        pool_dnc = SimulatedPool(threads=4)
        dnc = dnc_build_hcd(g, coreness, pool_dnc)
        pool_ph = SimulatedPool(threads=4)
        phcd_build_hcd(g, coreness, pool_ph)
        assert dnc.total_time > pool_ph.clock
